"""Cache-key soundness (VSL5xx): every result input must be in the key.

The content-addressed result cache (INTERNALS §9) and the snapshot store
(§15) key on ``SHA-256(code fingerprint | exp_id | config | seed | fast
[| prefix chain])``.  That key is sound only while two facts hold:

* **the fingerprint covers all the code that can run** — the fingerprint
  hashes every ``*.py`` under the installed ``repro`` package, so any
  import that resolves *outside* it (an unindexed ``repro.*`` submodule,
  a non-pinned third-party package) is code the key cannot see —
  **VSL501**;
* **nothing else feeds the result** — an ``os.environ`` read or a file
  read inside result-producing code is an input that two identical keys
  can disagree on — **VSL502** (environment) and **VSL503** (files).

Scope: hidden-input rules fire everywhere in ``src/repro`` *except* the
experiments layer's orchestration (CLI flags, supervisor deadlines, job
counts — host-side concerns that never touch a result value).  Inside the
experiments layer they fire exactly for functions reachable from a
work-unit body or prefix builder on the conservative call graph: that is
the code a warm pooled worker runs per unit.  Intentional reads carry a
reasoned blessing in ``config.HIDDEN_INPUT_BLESSED`` (the engine's three
mode knobs, whose cross-setting byte-identity is CI-enforced, and the
cache's own fingerprint/entry machinery).
"""

from __future__ import annotations

import sys
from typing import List, Set

from vschedlint import config
from vschedlint.callgraph import CallGraph, node_id, unit_root_nodes
from vschedlint.findings import Finding
from vschedlint.index import FileRecord, ProjectIndex

_STDLIB = set(getattr(sys, "stdlib_module_names", ())) | {
    "__future__", "typing", "dataclasses", "collections", "functools",
    "itertools", "math", "os", "sys", "json", "time", "hashlib",
}


def check_cachekeys(index: ProjectIndex, graph: CallGraph,
                    findings: List[Finding]) -> None:
    unit_reach = graph.reachable_from(unit_root_nodes(index))
    # Closure coverage is only meaningful when the whole package was
    # scanned; on partial scans (one file, one subpackage) every sibling
    # import would be a false gap.
    full_scan = "repro" in index.by_mod
    for rec in index.repro_records():
        _check_fingerprint_coverage(index, rec, full_scan, findings)
        _check_hidden_inputs(rec, unit_reach, findings)


def _check_fingerprint_coverage(index: ProjectIndex, rec: FileRecord,
                                full_scan: bool,
                                findings: List[Finding]) -> None:
    for target, name, line, col in rec.imports:
        root = target.split(".")[0]
        if root == "repro":
            if not full_scan:
                continue
            full = f"{target}.{name}" if name else target
            if target in index.by_mod or full in index.by_mod:
                continue
            # ``from repro.x import y`` where y is a symbol of repro.x:
            # covered as long as repro.x itself is indexed.
            if name is not None and target in index.by_mod:
                continue
            findings.append(Finding(
                "fingerprint-gap", rec.path, line, col,
                f"import of {target!r} resolves outside the scanned "
                f"package tree — the result cache's code fingerprint "
                f"cannot cover it",
                symbol=rec.symbol_at(line), modname=rec.modname))
        elif (root not in _STDLIB
              and root not in config.FINGERPRINTED_THIRD_PARTY
              and root != "vschedlint"):
            findings.append(Finding(
                "fingerprint-gap", rec.path, line, col,
                f"third-party import {root!r} is not covered by the "
                f"result cache's code fingerprint nor pinned in "
                f"config.FINGERPRINTED_THIRD_PARTY — a version change "
                f"would silently serve stale cached results",
                symbol=rec.symbol_at(line), modname=rec.modname))


def _in_scope(rec: FileRecord, func: str, unit_reach: Set[str]) -> bool:
    """Hidden-input scope: all sim layers; experiments only when the
    enclosing function is unit-reachable (module-level reads in an
    experiments module run at import time in every worker, so they are
    in scope too)."""
    if rec.layer != "experiments":
        return True
    if not func:
        return True
    return node_id(rec, func) in unit_reach


def _blessed(rec: FileRecord, func: str) -> bool:
    blessed = config.HIDDEN_INPUT_BLESSED.get(rec.modname, ())
    return func in blessed


def _check_hidden_inputs(rec: FileRecord, unit_reach: Set[str],
                         findings: List[Finding]) -> None:
    for read in rec.env_reads:
        func = read["func"]
        if not _in_scope(rec, func, unit_reach) or _blessed(rec, func):
            continue
        findings.append(Finding(
            "hidden-env-input", rec.path, read["line"], read["col"],
            f"{read['what']} read in result-producing code: the "
            f"environment is an input the unit cache key never sees — "
            f"fold it into the key or bless it in "
            f"config.HIDDEN_INPUT_BLESSED with a reason",
            symbol=func, modname=rec.modname))
    for read in rec.file_reads:
        func = read["func"]
        if not _in_scope(rec, func, unit_reach) or _blessed(rec, func):
            continue
        findings.append(Finding(
            "hidden-file-input", rec.path, read["line"], read["col"],
            f"{read['what']} in result-producing code: file contents are "
            f"an input the unit cache key never sees — load via config "
            f"plumbing that feeds the key, or bless it in "
            f"config.HIDDEN_INPUT_BLESSED with a reason",
            symbol=func, modname=rec.modname))
