"""Command-line entry point.

Exit codes: 0 clean (modulo baseline), 1 findings, 2 usage/config error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from vschedlint import baseline as baseline_mod
from vschedlint import report
from vschedlint.checker import lint_paths
from vschedlint.findings import RULES

DEFAULT_PATHS = ["src/repro"]
DEFAULT_BASELINE = Path(__file__).resolve().parent / "baseline.json"


def _list_rules() -> str:
    lines = []
    for slug, (rule_id, family, desc) in sorted(
            RULES.items(), key=lambda kv: kv[1][0]):
        lines.append(f"{rule_id}  {slug:<20} [{family}] {desc}")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="vschedlint",
        description="Static invariant checker for the vSched reproduction: "
                    "layering/guest isolation, determinism, and tickless "
                    "catch-up discipline.")
    parser.add_argument("paths", nargs="*", default=DEFAULT_PATHS,
                        help="files or directories to lint "
                             "(default: src/repro)")
    parser.add_argument("--format", choices=("text", "json"), default="text")
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE,
                        help="baseline file (default: the checked-in one)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline entirely")
    parser.add_argument("--write-baseline", action="store_true",
                        help="accept all current findings into --baseline "
                             "and exit 0")
    parser.add_argument("--show-baselined", action="store_true",
                        help="list baselined findings in text output")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    try:
        findings = lint_paths(args.paths)
    except (FileNotFoundError, OSError) as exc:
        print(f"vschedlint: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        n = baseline_mod.write_baseline(findings, args.baseline)
        print(f"wrote {n} entr{'y' if n == 1 else 'ies'} to {args.baseline}")
        return 0

    if not args.no_baseline:
        try:
            entries = baseline_mod.load_baseline(args.baseline)
        except (ValueError, OSError) as exc:
            print(f"vschedlint: {exc}", file=sys.stderr)
            return 2
        baseline_mod.apply_baseline(findings, entries, str(args.baseline))

    if args.format == "json":
        print(report.render_json(findings))
    elif args.show_baselined:
        print(report.render_text_full(findings))
    else:
        print(report.render_text(findings))

    return 1 if any(not f.baselined for f in findings) else 0


if __name__ == "__main__":
    sys.exit(main())
