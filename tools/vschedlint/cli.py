"""Command-line entry point.

Exit codes: 0 clean (modulo baseline), 1 findings, 2 usage/config error
(including a ``--write-baseline`` that would grow the baseline).
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path
from typing import Optional, Set

from vschedlint import baseline as baseline_mod
from vschedlint import report
from vschedlint.checker import lint_paths
from vschedlint.findings import RULES
from vschedlint.index import IndexCache

DEFAULT_PATHS = ["src/repro"]
DEFAULT_BASELINE = Path(__file__).resolve().parent / "baseline.json"
DEFAULT_CACHE = Path(".vschedlint-cache.json")


def _list_rules() -> str:
    lines = []
    for slug, (rule_id, family, desc) in sorted(
            RULES.items(), key=lambda kv: kv[1][0]):
        lines.append(f"{rule_id}  {slug:<20} [{family}] {desc}")
    return "\n".join(lines)


def _changed_files(base: str) -> Set[str]:
    """Resolved paths of .py files changed vs ``base``, plus untracked.

    The whole-program index is still built over everything the run was
    pointed at — cross-module findings need the full picture — only the
    *reported* findings are filtered to changed files.
    """
    top = subprocess.run(
        ["git", "rev-parse", "--show-toplevel"],
        capture_output=True, text=True, check=True).stdout.strip()
    out: Set[str] = set()
    for cmd in (["git", "diff", "--name-only", base, "--"],
                ["git", "ls-files", "--others", "--exclude-standard"]):
        proc = subprocess.run(cmd, capture_output=True, text=True,
                              check=True)
        for name in proc.stdout.splitlines():
            if name.endswith(".py"):
                out.add(str((Path(top) / name).resolve()))
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="vschedlint",
        description="Static invariant checker for the vSched reproduction: "
                    "layering/guest isolation, determinism, tickless "
                    "catch-up discipline, snapshot safety, cache-key "
                    "soundness, and cross-unit state leakage.")
    parser.add_argument("paths", nargs="*", default=DEFAULT_PATHS,
                        help="files or directories to lint "
                             "(default: src/repro)")
    parser.add_argument("--format",
                        choices=("text", "json", "sarif", "jsonl"),
                        default="text")
    parser.add_argument("--changed", nargs="?", const="HEAD", default=None,
                        metavar="BASE",
                        help="report only findings in files changed vs "
                             "BASE (default HEAD) or untracked; the "
                             "project index still covers all paths")
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE,
                        help="baseline file (default: the checked-in one)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline entirely")
    parser.add_argument("--write-baseline", action="store_true",
                        help="rewrite --baseline from current findings; "
                             "refuses to add entries (shrink-only)")
    parser.add_argument("--show-baselined", action="store_true",
                        help="list baselined findings in text output")
    parser.add_argument("--index-cache", type=Path, default=DEFAULT_CACHE,
                        metavar="FILE",
                        help="on-disk per-file record cache "
                             "(default: .vschedlint-cache.json)")
    parser.add_argument("--no-index-cache", action="store_true",
                        help="re-parse everything; do not read or write "
                             "the record cache")
    parser.add_argument("--stats", action="store_true",
                        help="print cache hit/miss counts to stderr")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    changed: Optional[Set[str]] = None
    if args.changed is not None:
        try:
            changed = _changed_files(args.changed)
        except (subprocess.CalledProcessError, OSError) as exc:
            print(f"vschedlint: --changed needs a git checkout: {exc}",
                  file=sys.stderr)
            return 2

    cache = IndexCache(None if args.no_index_cache else args.index_cache)
    try:
        findings = lint_paths(args.paths, cache=cache, changed=changed)
    except (FileNotFoundError, OSError) as exc:
        print(f"vschedlint: {exc}", file=sys.stderr)
        return 2
    if args.stats:
        print(f"vschedlint: index cache {cache.hits} hit(s), "
              f"{cache.misses} miss(es)", file=sys.stderr)

    if args.write_baseline:
        try:
            n = baseline_mod.write_baseline(findings, args.baseline)
        except baseline_mod.BaselineGrowthError as exc:
            print(f"vschedlint: {exc}", file=sys.stderr)
            return 2
        print(f"wrote {n} entr{'y' if n == 1 else 'ies'} to {args.baseline}")
        return 0

    if not args.no_baseline:
        try:
            entries = baseline_mod.load_baseline(args.baseline)
        except (ValueError, OSError) as exc:
            print(f"vschedlint: {exc}", file=sys.stderr)
            return 2
        baseline_mod.apply_baseline(findings, entries, str(args.baseline),
                                    report_stale=changed is None)

    if args.format == "json":
        print(report.render_json(findings))
    elif args.format == "sarif":
        print(report.render_sarif(findings))
    elif args.format == "jsonl":
        out = report.render_jsonl(findings)
        if out:
            print(out)
    elif args.show_baselined:
        print(report.render_text_full(findings))
    else:
        print(report.render_text(findings))

    return 1 if any(not f.baselined for f in findings) else 0


if __name__ == "__main__":
    sys.exit(main())
