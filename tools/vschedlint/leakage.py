"""Cross-unit leakage (VSL6xx): state that outlives a work unit.

The campaign scheduler runs many units in one warm pooled worker process
(INTERNALS §9–10).  The determinism contract says each unit is a pure
function of ``(code, config, seed)`` — which dies quietly the moment
simulation code writes module-level or class-level state: the *next* unit
in that worker observes it, a cold single-unit rerun does not, and the
divergence surfaces (if ever) as an unexplainable A/B or cache mismatch.

* **VSL601 cross-unit-state** — a function rebinds a module-level name
  (``global``) or mutates a module-level mutable (``X.append``,
  ``X[k] = v``), in its own module or through an import.
* **VSL602 class-attr-state** — a function writes a class attribute
  (``Engine.total_pushes += 1``, ``cls.cache = ...``): class objects are
  process-wide, so this is module state wearing a class name.

Intentional process-level stores carry reasoned blessings in
``config.PROCESS_STATE_BLESSED`` — the snapshot store and fingerprint
memo (content-addressed: a stale entry cannot alias a different input),
decorator registries (written at import time, deterministic per code
version), and the engine's telemetry counters (units report deltas;
results never read them).  The registry is the paper trail: every entry
says why persistence cannot change a unit's result.
"""

from __future__ import annotations

from typing import List

from vschedlint import config
from vschedlint.findings import Finding
from vschedlint.index import FileRecord, ProjectIndex


def check_leakage(index: ProjectIndex, findings: List[Finding]) -> None:
    for rec in index.repro_records():
        for write in rec.state_writes:
            _check_write(rec, write, findings)


def _check_write(rec: FileRecord, write: dict,
                 findings: List[Finding]) -> None:
    target_mod = write["target_mod"]
    name = write["name"]
    blessed = config.PROCESS_STATE_BLESSED.get(target_mod, ())
    if name in blessed:
        return
    how = write["how"]
    if how == "class-attr":
        findings.append(Finding(
            "class-attr-state", rec.path, write["line"], write["col"],
            f"write to class attribute {name} ({target_mod}): class "
            f"objects are process-wide, so this persists across units in "
            f"a warm pooled worker — move it to instance state or bless "
            f"it in config.PROCESS_STATE_BLESSED with a reason",
            symbol=write["func"], modname=rec.modname))
    else:
        verb = ("rebinds module-level name" if how == "global-rebind"
                else "mutates module-level state")
        findings.append(Finding(
            "cross-unit-state", rec.path, write["line"], write["col"],
            f"{write['func'] or 'module code'} {verb} {name!r} of "
            f"{target_mod}: it persists across units in a warm pooled "
            f"worker, breaking result = f(code, config, seed) — use "
            f"instance/world state or bless it in "
            f"config.PROCESS_STATE_BLESSED with a reason",
            symbol=write["func"], modname=rec.modname))
