"""Determinism rules (VSL20x).

The repo's A/B byte-identity harness, content-addressed result cache, and
chaos drills all assume a run is a pure function of (code, config, seed).
These rules flag the four ways that quietly stops being true:

* ``wall-clock`` — ``time.time()``/``datetime.now()`` anywhere in
  ``src/repro``; monotonic/CPU clocks too, except in the experiments layer
  (host-side deadlines and progress lines legitimately measure real time).
* ``unseeded-rng`` — any ``random.*`` use, and any ``np.random.*`` module
  call outside ``repro.sim.rng`` (the one sanctioned factory; everything
  else takes an explicit ``Generator``).
* ``identity-key`` — ``id()`` in simulation layers: object identity varies
  per process, so it must never order or key anything.
* ``unordered-iter`` — iterating a value that is statically a set (or a
  dict view, when the function also schedules events) without an explicit
  ordering.  Set iteration order depends on PYTHONHASHSEED for strings and
  on allocation history in general; feeding it into the event heap or a
  rendered table is a cross-run divergence waiting to happen.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from vschedlint import config
from vschedlint.findings import Finding


#: RNG constructors that are deterministic when given an explicit seed —
#: tools/tests may build these directly (the ``allow_seeded_rng`` policy);
#: ``src/repro`` still routes everything through ``repro.sim.rng``.
_SEEDED_RNG_CTORS = frozenset({"Random", "default_rng", "Generator",
                               "SeedSequence", "PCG64", "Philox"})


def _call_target(node: ast.Call):
    """(root, attr) for ``root.attr(...)`` calls, (None, name) for bare."""
    fn = node.func
    if isinstance(fn, ast.Attribute) and isinstance(fn.value, ast.Name):
        return fn.value.id, fn.attr
    if isinstance(fn, ast.Name):
        return None, fn.id
    return None, None


def check_clocks_and_rng(module, findings: List[Finding]) -> None:
    layer = module.layer
    in_rng_factory = module.modname == config.RNG_FACTORY_MODULE
    # Tree policy: tools/ and tests/ run on the host's clock and may
    # key on object identity (pytest fixtures, progress timers).
    allow_wallclock = getattr(module, "allow_wallclock", False)
    allow_identity = (getattr(module, "allow_identity", False)
                      or layer == "experiments")
    allow_seeded = getattr(module, "allow_seeded_rng", False)
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        root, attr = _call_target(node)
        sym = module.symbol_at(node.lineno)

        # --- wall clocks -------------------------------------------------
        if allow_wallclock:
            pass
        elif (root, attr) in config.WALLCLOCK_FORBIDDEN:
            findings.append(Finding(
                "wall-clock", module.path, node.lineno, node.col_offset,
                f"{root}.{attr}() reads the wall clock; simulated time is "
                f"engine.now, and display-only timing belongs behind an "
                f"experiments-layer wallclock() helper",
                symbol=sym, modname=module.modname))
        elif ((root, attr) in config.MONOTONIC_FORBIDDEN
              and layer not in config.MONOTONIC_EXEMPT_LAYERS):
            findings.append(Finding(
                "wall-clock", module.path, node.lineno, node.col_offset,
                f"{root}.{attr}() is host time; only the experiments layer "
                f"may measure real elapsed time",
                symbol=sym, modname=module.modname))

        # --- RNG ----------------------------------------------------------
        if root == "random":
            if not (allow_seeded and attr in _SEEDED_RNG_CTORS
                    and node.args):
                findings.append(Finding(
                    "unseeded-rng", module.path, node.lineno,
                    node.col_offset,
                    f"random.{attr}() draws from the process-global "
                    f"stream; route randomness through "
                    f"repro.sim.rng.make_rng",
                    symbol=sym, modname=module.modname))
        # np.random.<fn>(...) — the module-level legacy stream, or
        # default_rng outside the sanctioned factory.
        fn = node.func
        if (isinstance(fn, ast.Attribute)
                and isinstance(fn.value, ast.Attribute)
                and fn.value.attr == "random"
                and isinstance(fn.value.value, ast.Name)
                and fn.value.value.id in ("np", "numpy")):
            if not in_rng_factory and not (
                    allow_seeded and fn.attr in _SEEDED_RNG_CTORS
                    and node.args):
                findings.append(Finding(
                    "unseeded-rng", module.path, node.lineno,
                    node.col_offset,
                    f"np.random.{fn.attr}() outside repro.sim.rng; use "
                    f"make_rng/split_rng and pass the Generator",
                    symbol=sym, modname=module.modname))

        # --- identity -----------------------------------------------------
        if (root, attr) == (None, "id") and not allow_identity:
            findings.append(Finding(
                "identity-key", module.path, node.lineno, node.col_offset,
                "id() is per-process object identity; it must never key, "
                "order, or fingerprint simulation state",
                symbol=sym, modname=module.modname))


# ---------------------------------------------------------------------------
# unordered-iter
# ---------------------------------------------------------------------------
def _is_set_expr(node, set_names: Set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
        return (_is_set_expr(node.left, set_names)
                or _is_set_expr(node.right, set_names))
    return False


def _is_dict_view(node) -> bool:
    return (isinstance(node, ast.Call) and not node.args
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("keys", "values", "items"))


_SET_TYPE_NAMES = ("Set", "FrozenSet", "set", "frozenset", "AbstractSet",
                   "MutableSet")


def _annotation_is_set(ann) -> bool:
    """True only when the annotation *head* is a set type.

    Only the outermost constructor counts: ``List[FrozenSet[int]]`` is a
    list, however set-flavoured its elements.
    """
    if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
        head = ann.value.split("[", 1)[0].strip()
        return head in _SET_TYPE_NAMES
    if isinstance(ann, ast.Subscript):
        ann = ann.value
    if isinstance(ann, ast.Name):
        return ann.id in _SET_TYPE_NAMES
    if isinstance(ann, ast.Attribute):
        return ann.attr in _SET_TYPE_NAMES
    return False


class _UnorderedVisitor(ast.NodeVisitor):
    def __init__(self, module, findings: List[Finding]):
        self.module = module
        self.findings = findings
        self.set_names_stack: List[Set[str]] = [set()]
        self.has_sink_stack: List[bool] = [False]
        #: iteration nodes feeding only order-insensitive consumers
        self.blessed: Set[int] = set()

    # -- function scopes ---------------------------------------------------
    def visit_FunctionDef(self, node):
        names: Set[str] = set()
        args = node.args
        for a in (args.posonlyargs + args.args + args.kwonlyargs):
            if a.annotation is not None and _annotation_is_set(a.annotation):
                names.add(a.arg)
        has_sink = False
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                _, attr = _call_target(sub)
                if attr in config.ORDERING_SINKS:
                    has_sink = True
                    break
        self.set_names_stack.append(names)
        self.has_sink_stack.append(has_sink)
        self.generic_visit(node)
        self.set_names_stack.pop()
        self.has_sink_stack.pop()

    visit_AsyncFunctionDef = visit_FunctionDef

    # -- set-name inference -------------------------------------------------
    def visit_Assign(self, node):
        is_set = _is_set_expr(node.value, self.set_names_stack[-1])
        for tgt in node.targets:
            if isinstance(tgt, ast.Name):
                if is_set:
                    self.set_names_stack[-1].add(tgt.id)
                else:
                    self.set_names_stack[-1].discard(tgt.id)
        self.generic_visit(node)

    def visit_AnnAssign(self, node):
        if isinstance(node.target, ast.Name) and _annotation_is_set(
                node.annotation):
            self.set_names_stack[-1].add(node.target.id)
        self.generic_visit(node)

    # -- blessing: order-insensitive consumers ------------------------------
    def visit_Call(self, node):
        if isinstance(node.func, ast.Name) and (
                node.func.id in config.ORDER_INSENSITIVE_CONSUMERS):
            for arg in node.args:
                self.blessed.add(id(arg))
                if isinstance(arg, (ast.GeneratorExp, ast.SetComp)):
                    for comp in arg.generators:
                        self.blessed.add(id(comp.iter))
        self.generic_visit(node)

    # -- iteration sites -----------------------------------------------------
    def _flag(self, iter_node, what: str) -> None:
        self.findings.append(Finding(
            "unordered-iter", self.module.path, iter_node.lineno,
            iter_node.col_offset,
            f"iteration over {what} has no defined order; wrap in sorted() "
            f"or keep an explicitly ordered structure",
            symbol=self.module.symbol_at(iter_node.lineno),
            modname=self.module.modname))

    def _check_iter(self, iter_node) -> None:
        if id(iter_node) in self.blessed:
            return
        if _is_set_expr(iter_node, self.set_names_stack[-1]):
            self._flag(iter_node, "a set")
        elif (_is_dict_view(iter_node) and self.has_sink_stack[-1]
              and getattr(self.module, "dict_view_sinks", True)
              and self.module.layer not in config.ORDERING_SINK_EXEMPT_LAYERS):
            self._flag(
                iter_node,
                f"dict .{iter_node.func.attr}() in a function that "
                f"schedules events (insertion order is load-bearing here; "
                f"make the order explicit)")

    def visit_For(self, node):
        self._check_iter(node.iter)
        self.generic_visit(node)

    def _visit_comp(self, node):
        for comp in node.generators:
            self._check_iter(comp.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comp
    visit_GeneratorExp = _visit_comp
    # SetComp / DictComp results are unordered anyway; iterating a set into
    # another set is order-insensitive by construction.


def check_unordered_iteration(module, findings: List[Finding]) -> None:
    _UnorderedVisitor(module, findings).visit(module.tree)
