"""Snapshot safety (VSL4xx): copy-unsafe callables at registration sites.

Warm-start snapshots (INTERNALS §15) freeze a world with one deep copy.
``copy.deepcopy`` silently treats three kinds of callables as atoms, so a
fork would share state with the world it was forked from — exactly the
classes ``repro.sim.snapshot.guard_world`` rejects at runtime:

* closures (lambdas or nested defs with free variables): their cells keep
  pointing into the original world — **VSL401**;
* bound builtin methods (``some_list.append``): the receiver is never
  copied — **VSL402**;
* functions with mutable defaults: the default objects are shared between
  original and fork — **VSL403**;
* live generators in event arguments: not deep-copyable at all —
  **VSL404**.

The runtime guard only fires when a world is actually frozen, i.e. after
a scenario has been migrated to a snapshot prefix; these rules fire at
*every* registration site in ``src/repro`` (``Engine.call_at/call_in``,
``add_sync_hook``, ``activity_listeners.append``), because any scenario
is a candidate for migration and a violation discovered then is a
mid-campaign crash.  Cross-module resolution goes through the project
index; callables the index cannot resolve (parameters, values out of
containers) are conservatively trusted — the runtime guard remains the
backstop for those, which is the documented under-approximation.

``@snapshot_safe`` and ``@restartable_body`` vouch for a callable and
silence the rules, mirroring the runtime escape hatches.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from vschedlint import config
from vschedlint.callgraph import CallGraph, node_id, unit_root_nodes
from vschedlint.findings import Finding
from vschedlint.index import FileRecord, FunctionInfo, ProjectIndex


def check_snapshot_safety(index: ProjectIndex, graph: CallGraph,
                          findings: List[Finding]) -> None:
    prefix_reach = _prefix_reachable(index, graph)
    for rec in index.repro_records():
        for site in rec.reg_sites:
            _check_site(index, rec, site, prefix_reach, findings)


def _prefix_reachable(index: ProjectIndex, graph: CallGraph) -> Set[str]:
    """Nodes reachable from PrefixSpec builders and work-unit bodies —
    code that demonstrably runs inside (or builds) snapshot-covered
    worlds today.  Used to sharpen messages, never to skip a site."""
    return graph.reachable_from(unit_root_nodes(index))


def _flag(findings: List[Finding], rec: FileRecord, site: dict, rule: str,
          detail: str, reachable: bool) -> None:
    where = ("in a snapshot-covered scenario path"
             if reachable else "a warm-start migration away from crashing")
    findings.append(Finding(
        rule, rec.path, site["line"], site["col"],
        f"{detail} registered via {site['kind']} — deepcopy would alias "
        f"the original world ({where}; see guard_world, INTERNALS §15)",
        symbol=site["func"], modname=rec.modname))


def _is_vouched(info: FunctionInfo) -> bool:
    return any(d in config.SNAPSHOT_SAFE_DECORATORS
               for d in info.decorators)


def _resolve_callable(index: ProjectIndex, rec: FileRecord, summary: dict,
                      context: str) -> Optional[Tuple[FileRecord,
                                                      FunctionInfo]]:
    if summary.get("form") == "name":
        return index.resolve_function(rec, summary["id"],
                                      context_qual=context)
    if summary.get("form") == "attr":
        return index.resolve_method(rec, summary["attr"],
                                    context_qual=context)
    return None


def _check_site(index: ProjectIndex, rec: FileRecord, site: dict,
                prefix_reach: Set[str], findings: List[Finding]) -> None:
    reachable = _site_reachable(rec, site, prefix_reach)
    _check_callback(index, rec, site, site.get("callback") or {},
                    reachable, findings, depth=0)
    for arg in site.get("args", ()):
        _check_arg(index, rec, site, arg, reachable, findings)


def _site_reachable(rec: FileRecord, site: dict,
                    prefix_reach: Set[str]) -> bool:
    return node_id(rec, site["func"]) in prefix_reach if site["func"] \
        else False


def _check_callback(index: ProjectIndex, rec: FileRecord, site: dict,
                    cb: dict, reachable: bool, findings: List[Finding],
                    depth: int) -> None:
    if depth > 3:
        return
    form = cb.get("form")

    if form == "lambda":
        if cb.get("free"):
            _flag(findings, rec, site, "snapshot-closure",
                  f"lambda closing over {sorted(cb['free'])}", reachable)
        return

    if form == "attr":
        # ``partial`` objects and bound methods of in-world objects are
        # safe (the receiver copies through the memo); builtin-container
        # methods are not.
        if cb.get("attr") in config.BOUND_BUILTIN_METHODS:
            _flag(findings, rec, site, "snapshot-bound-builtin",
                  f"bound builtin candidate {cb.get('dotted', cb['attr'])!r}",
                  reachable)
            return
        hit = index.resolve_method(rec, cb["attr"],
                                   context_qual=site["func"])
        if hit is not None and not _is_vouched(hit[1]):
            if hit[1].mutable_defaults:
                _flag(findings, rec, site, "snapshot-mutable-default",
                      f"method {hit[1].qual!r} has mutable default "
                      f"arguments (shared between original and fork)",
                      reachable)
        return

    if form == "name":
        hit = index.resolve_function(rec, cb["id"],
                                     context_qual=site["func"])
        if hit is None or _is_vouched(hit[1]):
            return
        src, info = hit
        if info.free:
            _flag(findings, rec, site, "snapshot-closure",
                  f"function {info.qual!r} ({src.modname}) closes over "
                  f"{sorted(info.free)}", reachable)
        if info.mutable_defaults:
            _flag(findings, rec, site, "snapshot-mutable-default",
                  f"function {info.qual!r} ({src.modname}) has mutable "
                  f"default arguments", reachable)
        return

    if form == "call":
        callee = cb.get("callee") or {}
        # functools.partial(f, ...): the partial copies through the memo,
        # f is what must be safe — recurse into the first argument.
        callee_name = callee.get("id") or callee.get("attr")
        if callee_name == "partial":
            args = cb.get("args") or []
            if args:
                _check_callback(index, rec, site, args[0], reachable,
                                findings, depth + 1)
            return
        # factory call: whatever the factory returns is the callback.
        hit = _resolve_callable(index, rec, callee, site["func"])
        if hit is None or _is_vouched(hit[1]):
            return
        src, info = hit
        for ret in info.returns:
            if ret.get("form") == "lambda" and ret.get("free"):
                _flag(findings, rec, site, "snapshot-closure",
                      f"factory {info.qual!r} ({src.modname}) returns a "
                      f"lambda closing over {sorted(ret['free'])}",
                      reachable)
            elif ret.get("form") == "name":
                inner = src.function(f"{info.qual}.{ret['id']}")
                if inner is not None and inner.free and not _is_vouched(
                        inner):
                    _flag(findings, rec, site, "snapshot-closure",
                          f"factory {info.qual!r} ({src.modname}) returns "
                          f"nested function {ret['id']!r} closing over "
                          f"{sorted(inner.free)}", reachable)


def _check_arg(index: ProjectIndex, rec: FileRecord, site: dict, arg: dict,
               reachable: bool, findings: List[Finding]) -> None:
    form = arg.get("form")
    if form == "genexp":
        _flag(findings, rec, site, "snapshot-generator",
              "generator expression passed as event argument (generators "
              "cannot be deep-copied)", reachable)
        return
    if form == "call":
        callee = arg.get("callee") or {}
        hit = _resolve_callable(index, rec, callee, site["func"])
        if hit is not None and hit[1].has_yield and not _is_vouched(
                hit[1]):
            _flag(findings, rec, site, "snapshot-generator",
                  f"argument is a live generator from {hit[1].qual!r} "
                  f"({hit[0].modname}) (generators cannot be deep-copied)",
                  reachable)
