"""Declarative configuration: the layer graph, the guest-visible ABI, and
the elision registry.

Everything the checker enforces is data in this module, so the contracts
stay reviewable in one place.  Changing a boundary is a one-line diff here
— and a deliberate one, because this file is what INTERNALS §12 documents.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Layer graph
# ---------------------------------------------------------------------------
# Rank order: a module may import only from layers of rank <= its own.
# (Equal rank = same layer; intra-layer imports are always fine.)
#
#   sim -> hw -> hypervisor -> [guest ABI] -> guest/core/probers
#       -> workloads -> metrics/cluster -> experiments
LAYER_RANK = {
    "sim": 0,
    "hw": 1,
    "hypervisor": 2,
    "guest": 3,
    "core": 3,
    "probers": 3,
    "workloads": 4,
    "metrics": 5,
    "cluster": 5,
    "experiments": 6,
}

#: Layers that are "the guest": they model code running inside the VM and
#: must not read host-side oracle state (see GUEST ABI below).
GUEST_SIDE_LAYERS = frozenset({"guest", "core", "probers", "workloads"})

#: The host-side package guest layers may not import from.
HOST_PACKAGE = "repro.hypervisor"

#: Modules importable from *any* layer, including lower-ranked ones.
#: ``repro.core.weights`` holds the CFS nice->weight table — pure arithmetic
#: shared by host entities and guest probers, with no scheduler state.
NEUTRAL_MODULES = frozenset({
    "repro.core.weights",
})

#: Host names guest-side code may import by name (none today: the runtime
#: ABI below covers every sanctioned channel).  Maps module -> names.
GUEST_IMPORT_ALLOWLIST: dict = {}

#: The package whose modules may touch ``heapq`` / ``._heap`` directly.
#: Everything else goes through the Engine API (call_at/call_in/cancel) or
#: the backend protocol (push/pop_due/note_cancelled), so the event store
#: stays swappable (heap vs timer wheel) without grep-and-pray refactors.
HEAP_OWNER_PACKAGE = "repro.sim"

# ---------------------------------------------------------------------------
# Guest-visible runtime ABI (attribute allowlist)
# ---------------------------------------------------------------------------
# Guest-side code holds handles to hypervisor objects (its VCpuThread, the
# VM, transitively the Machine).  A real Linux guest on KVM sees exactly:
# steal time, the ability to halt and be kicked, activity transitions (the
# steal-jump observable), and the physics of measurements it performs
# itself (cache-line ping-pong latency).  Anything else is an oracle.

#: Attributes guest code may touch on a vCPU handle (``*.vcpu`` or
#: ``vm.vcpus[i]``).
VCPU_ABI = frozenset({
    "active",              # host-activity flag (observable via steal jumps)
    "steal_ns",            # paravirtual steal time (/proc/stat steal)
    "halt",                # guest idle -> host blocks the thread
    "kick",                # wake a halted vCPU (IPI)
    "guest_cpu",           # guest attach point (set by the guest kernel)
    "last_thread",         # hosting hw thread: physics input, below
    "activity_listeners",  # transition callbacks (vtop's event-driven probe)
    "index",
})

#: Attributes guest code may touch on the VM handle.
VM_ABI = frozenset({"vcpus", "machine", "kernel", "name"})

#: Attributes guest code may touch on the Machine handle, and — for the
#: physics channels — which sub-attributes.  ``topology.distance`` and the
#: cache model parameterize effects a guest *measures* (cache-line transfer
#: latency, IPI cost, coherence stalls); the guest never reads them for
#: answers, only to simulate the measurement a real guest performs.
MACHINE_ABI = frozenset({"engine", "tracer", "topology", "cache"})
MACHINE_TOPOLOGY_ABI = frozenset({"distance"})
MACHINE_CACHE_ABI = frozenset({"base_latency", "stall_cycles", "sample_latency"})

# ---------------------------------------------------------------------------
# Determinism
# ---------------------------------------------------------------------------
#: The one module allowed to construct numpy generators: everything else
#: must route through repro.sim.rng.make_rng / split_rng.
RNG_FACTORY_MODULE = "repro.sim.rng"

#: Wall-clock calls that are never acceptable inside src/repro.
WALLCLOCK_FORBIDDEN = {
    ("time", "time"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("date", "today"),
}

#: Monotonic/process clocks: meaningless in simulated time, so forbidden in
#: simulation layers; the experiments layer legitimately measures host
#: elapsed time with them (supervisor deadlines, progress lines).
MONOTONIC_FORBIDDEN = {
    ("time", "monotonic"),
    ("time", "perf_counter"),
    ("time", "process_time"),
}
MONOTONIC_EXEMPT_LAYERS = frozenset({"experiments"})

#: Ordering-sensitive sinks: a dict-view iteration in a function that also
#: schedules events or pushes heap entries gets flagged.
ORDERING_SINKS = frozenset({"call_at", "call_in", "heappush", "heapify"})

#: The dict-view+sink heuristic targets the *simulation* event heap.  The
#: experiments layer runs real subprocesses against real (monotonic)
#: deadlines; its heaps are host-time backoff queues, and CPython dict
#: views iterate in deterministic insertion order anyway.
ORDERING_SINK_EXEMPT_LAYERS = frozenset({"experiments"})

#: Builtins whose result does not depend on iteration order; set iteration
#: feeding only these is fine.
ORDER_INSENSITIVE_CONSUMERS = frozenset({
    "sorted", "set", "frozenset", "any", "all", "sum", "len", "min", "max",
})

# ---------------------------------------------------------------------------
# Elision registry
# ---------------------------------------------------------------------------
#: Fields whose value is maintained by (possibly elided) ticks and
#: materialized by GuestCpu._catch_up / the engine sync hook.  Any function
#: in src/repro that reads or writes one of these must call a sync method
#: first (textually earlier in its body).
ELISION_FIELDS = frozenset({
    # GuestCpu tick/segment state (guest/cpu.py)
    "_tick_due", "_seg_update", "last_tick_time",
    # vact kernel-side instrumentation, stamped by tick_accounting
    "last_heartbeat", "tick_steal_last", "preempt_count", "active_since_est",
    "steal_graze_count",
    # default-CFS capacity estimate, decayed per tick
    "cfs_capacity", "steal_frac_avg", "_cap_touch",
    # Machine elided-timer state (hypervisor/machine.py)
    "_balance_next", "_core_ramp_goal",
})

#: Calls that count as "the state is materialized from here on".
ELISION_SYNC_CALLS = frozenset({
    "_catch_up",            # per-CPU replay (GuestCpu)
    "sync_ticks",           # kernel-wide replay (GuestKernel, engine hook)
    "_note_host_waiting",   # host balance-grid re-arm (Machine)
    "materialize",          # engine-wide replay via the registered sync
                            # hooks — Engine.snapshot()/WorldSnapshot call
                            # it before freezing, so state read after a
                            # freeze point is fully materialized (§15)
})

#: Functions allowed to touch registered fields without syncing, because
#: they *are* the elision machinery (replay primitives, timer callbacks
#: that own the state) or constructors.  Qualnames, matched per module.
ELISION_EXEMPT = {
    "repro.guest.cpu": {
        "GuestCpu._catch_up",      # the replay loop itself
        "GuestCpu._integrate",     # replay primitive, called per elided tick
    },
    "repro.guest.kernel": {
        "GuestKernel.tick_accounting",          # the replayed arithmetic
        "GuestKernel._update_default_capacity",  # called only from it
    },
    "repro.hypervisor.machine": {
        "Machine._start_host_balance",  # grid origin setup
        "Machine._note_host_waiting",   # the sync hook itself
        "Machine._host_balance",        # the timer body; advances the grid
        "Machine._update_dvfs",         # owns the logical-due goal
        "Machine._dvfs_fire",           # timer body chasing the due
    },
}

#: ``__init__`` initializes registered fields everywhere.
ELISION_EXEMPT_EVERYWHERE = frozenset({"__init__"})
