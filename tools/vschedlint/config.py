"""Declarative configuration: the layer graph, the guest-visible ABI, and
the elision registry.

Everything the checker enforces is data in this module, so the contracts
stay reviewable in one place.  Changing a boundary is a one-line diff here
— and a deliberate one, because this file is what INTERNALS §12 documents.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Layer graph
# ---------------------------------------------------------------------------
# Rank order: a module may import only from layers of rank <= its own.
# (Equal rank = same layer; intra-layer imports are always fine.)
#
#   sim -> hw -> hypervisor -> [guest ABI] -> guest/core/probers
#       -> workloads -> metrics/cluster -> experiments
LAYER_RANK = {
    "sim": 0,
    "hw": 1,
    "hypervisor": 2,
    "guest": 3,
    "core": 3,
    "probers": 3,
    "workloads": 4,
    "metrics": 5,
    "cluster": 5,
    "experiments": 6,
}

#: Layers that are "the guest": they model code running inside the VM and
#: must not read host-side oracle state (see GUEST ABI below).
GUEST_SIDE_LAYERS = frozenset({"guest", "core", "probers", "workloads"})

#: The host-side package guest layers may not import from.
HOST_PACKAGE = "repro.hypervisor"

#: Modules importable from *any* layer, including lower-ranked ones.
#: ``repro.core.weights`` holds the CFS nice->weight table — pure arithmetic
#: shared by host entities and guest probers, with no scheduler state.
NEUTRAL_MODULES = frozenset({
    "repro.core.weights",
})

#: Host names guest-side code may import by name (none today: the runtime
#: ABI below covers every sanctioned channel).  Maps module -> names.
GUEST_IMPORT_ALLOWLIST: dict = {}

#: The package whose modules may touch ``heapq`` / ``._heap`` directly.
#: Everything else goes through the Engine API (call_at/call_in/cancel) or
#: the backend protocol (push/pop_due/note_cancelled), so the event store
#: stays swappable (heap vs timer wheel) without grep-and-pray refactors.
HEAP_OWNER_PACKAGE = "repro.sim"

# ---------------------------------------------------------------------------
# Guest-visible runtime ABI (attribute allowlist)
# ---------------------------------------------------------------------------
# Guest-side code holds handles to hypervisor objects (its VCpuThread, the
# VM, transitively the Machine).  A real Linux guest on KVM sees exactly:
# steal time, the ability to halt and be kicked, activity transitions (the
# steal-jump observable), and the physics of measurements it performs
# itself (cache-line ping-pong latency).  Anything else is an oracle.

#: Attributes guest code may touch on a vCPU handle (``*.vcpu`` or
#: ``vm.vcpus[i]``).
VCPU_ABI = frozenset({
    "active",              # host-activity flag (observable via steal jumps)
    "steal_ns",            # paravirtual steal time (/proc/stat steal)
    "halt",                # guest idle -> host blocks the thread
    "kick",                # wake a halted vCPU (IPI)
    "guest_cpu",           # guest attach point (set by the guest kernel)
    "last_thread",         # hosting hw thread: physics input, below
    "activity_listeners",  # transition callbacks (vtop's event-driven probe)
    "index",
})

#: Attributes guest code may touch on the VM handle.
VM_ABI = frozenset({"vcpus", "machine", "kernel", "name"})

#: Attributes guest code may touch on the Machine handle, and — for the
#: physics channels — which sub-attributes.  ``topology.distance`` and the
#: cache model parameterize effects a guest *measures* (cache-line transfer
#: latency, IPI cost, coherence stalls); the guest never reads them for
#: answers, only to simulate the measurement a real guest performs.
MACHINE_ABI = frozenset({"engine", "tracer", "topology", "cache"})
MACHINE_TOPOLOGY_ABI = frozenset({"distance"})
MACHINE_CACHE_ABI = frozenset({"base_latency", "stall_cycles", "sample_latency"})

# ---------------------------------------------------------------------------
# Determinism
# ---------------------------------------------------------------------------
#: The one module allowed to construct numpy generators: everything else
#: must route through repro.sim.rng.make_rng / split_rng.
RNG_FACTORY_MODULE = "repro.sim.rng"

#: Wall-clock calls that are never acceptable inside src/repro.
WALLCLOCK_FORBIDDEN = {
    ("time", "time"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("date", "today"),
}

#: Monotonic/process clocks: meaningless in simulated time, so forbidden in
#: simulation layers; the experiments layer legitimately measures host
#: elapsed time with them (supervisor deadlines, progress lines).
MONOTONIC_FORBIDDEN = {
    ("time", "monotonic"),
    ("time", "perf_counter"),
    ("time", "process_time"),
}
MONOTONIC_EXEMPT_LAYERS = frozenset({"experiments"})

#: Ordering-sensitive sinks: a dict-view iteration in a function that also
#: schedules events or pushes heap entries gets flagged.
ORDERING_SINKS = frozenset({"call_at", "call_in", "heappush", "heapify"})

#: The dict-view+sink heuristic targets the *simulation* event heap.  The
#: experiments layer runs real subprocesses against real (monotonic)
#: deadlines; its heaps are host-time backoff queues, and CPython dict
#: views iterate in deterministic insertion order anyway.
ORDERING_SINK_EXEMPT_LAYERS = frozenset({"experiments"})

#: Builtins whose result does not depend on iteration order; set iteration
#: feeding only these is fine.
ORDER_INSENSITIVE_CONSUMERS = frozenset({
    "sorted", "set", "frozenset", "any", "all", "sum", "len", "min", "max",
})

# ---------------------------------------------------------------------------
# Elision registry
# ---------------------------------------------------------------------------
#: Fields whose value is maintained by (possibly elided) ticks and
#: materialized by GuestCpu._catch_up / the engine sync hook.  Any function
#: in src/repro that reads or writes one of these must call a sync method
#: first (textually earlier in its body).
ELISION_FIELDS = frozenset({
    # GuestCpu tick/segment state (guest/cpu.py)
    "_tick_due", "_seg_update", "last_tick_time",
    # vact kernel-side instrumentation, stamped by tick_accounting
    "last_heartbeat", "tick_steal_last", "preempt_count", "active_since_est",
    "steal_graze_count",
    # default-CFS capacity estimate, decayed per tick
    "cfs_capacity", "steal_frac_avg", "_cap_touch",
    # Machine elided-timer state (hypervisor/machine.py)
    "_balance_next", "_core_ramp_goal",
})

#: Calls that count as "the state is materialized from here on".
ELISION_SYNC_CALLS = frozenset({
    "_catch_up",            # per-CPU replay (GuestCpu)
    "sync_ticks",           # kernel-wide replay (GuestKernel, engine hook)
    "_note_host_waiting",   # host balance-grid re-arm (Machine)
    "materialize",          # engine-wide replay via the registered sync
                            # hooks — Engine.snapshot()/WorldSnapshot call
                            # it before freezing, so state read after a
                            # freeze point is fully materialized (§15)
})

#: Functions allowed to touch registered fields without syncing, because
#: they *are* the elision machinery (replay primitives, timer callbacks
#: that own the state) or constructors.  Qualnames, matched per module.
ELISION_EXEMPT = {
    "repro.guest.cpu": {
        "GuestCpu._catch_up",      # the replay loop itself
        "GuestCpu._integrate",     # replay primitive, called per elided tick
    },
    "repro.guest.kernel": {
        "GuestKernel.tick_accounting",          # the replayed arithmetic
        "GuestKernel._update_default_capacity",  # called only from it
    },
    "repro.hypervisor.machine": {
        "Machine._start_host_balance",  # grid origin setup
        "Machine._note_host_waiting",   # the sync hook itself
        "Machine._host_balance",        # the timer body; advances the grid
        "Machine._update_dvfs",         # owns the logical-due goal
        "Machine._dvfs_fire",           # timer body chasing the due
    },
}

#: ``__init__`` initializes registered fields everywhere.
ELISION_EXEMPT_EVERYWHERE = frozenset({"__init__"})

# ---------------------------------------------------------------------------
# Trees and per-tree rule policy
# ---------------------------------------------------------------------------
# vschedlint lints three trees with different contracts.  ``src/repro`` is
# the simulator: every family applies.  ``tools/`` is host-side dev
# tooling: it may read real clocks (bench measures wall time) but must
# still be deterministic where it feeds A/B comparisons, and must not
# reach into engine internals.  ``tests/`` may read clocks and poke
# internals (white-box tests of the backends are the point), but unseeded
# randomness would make failures unreproducible.
#
# Families: "layering", "determinism", "elision", "snapshot", "cachekeys",
# "leakage".  Flags soften individual determinism rules per tree.
TREE_POLICIES = {
    "repro": {
        "families": frozenset({"layering", "determinism", "elision",
                               "snapshot", "cachekeys", "leakage"}),
        "allow_wallclock": False,
        "allow_identity": False,
    },
    "tools": {
        "families": frozenset({"determinism"}),
        # bench/abdiff measure real elapsed time on purpose
        "allow_wallclock": True,
        "allow_identity": True,
        # explicit-seed RNG constructors (random.Random(0)) are fine;
        # drawing from the process-global stream still is not
        "allow_seeded_rng": True,
        # the dict-view+sink heuristic targets the sim event heap
        "dict_view_sinks": False,
        # tools must not reach into the engine's event store either
        "heap_encapsulation": True,
    },
    "tests": {
        "families": frozenset({"determinism"}),
        "allow_wallclock": True,
        "allow_identity": True,
        "allow_seeded_rng": True,
        "dict_view_sinks": False,
        "heap_encapsulation": False,  # white-box backend tests are fine
    },
}

#: Directory components whose subtrees are skipped when a *directory* is
#: expanded (explicit file arguments always lint).  The vschedlint test
#: fixtures are deliberate rule violations: linting them as part of
#: ``vschedlint tests`` would report their intentional findings.
EXCLUDED_DIR_COMPONENTS = frozenset({"__pycache__", "fixtures"})

# ---------------------------------------------------------------------------
# Snapshot safety (VSL4xx)
# ---------------------------------------------------------------------------
#: Method names whose call registers a callable into the simulated world,
#: mapped to the positional index of the callable argument.  Everything
#: scheduled through these can sit in a pending event when a scenario
#: prefix freezes (INTERNALS §15), so it must survive ``copy.deepcopy``.
REGISTRATION_CALLS = {
    "call_at": 1,        # Engine.call_at(time, callback, *args)
    "call_in": 1,        # Engine.call_in(delay, callback, *args)
    "add_sync_hook": 0,  # Engine.add_sync_hook(hook)
}

#: Attributes that hold listener lists on world objects;
#: ``<attr>.append(cb)`` is a registration site too.
LISTENER_ATTRS = frozenset({"activity_listeners"})

#: Constructors whose ``func`` argument names a work-unit body or prefix
#: builder, mapped to its positional index.  These are the reachability
#: roots: the code a warm pooled worker runs per unit.
UNIT_ROOT_CTORS = {
    "WorkUnit": 2,    # WorkUnit(exp_id, label, func, ...)
    "PrefixSpec": 1,  # PrefixSpec(key, func, ...)
}

#: Builtin-container method names: ``x.append`` passed as a callback is
#: (almost certainly) a bound builtin, which ``copy.deepcopy`` treats as
#: an atom — the fork would keep mutating the original receiver.  A user
#: class happening to define one of these names is a suppressible false
#: positive; none exist in this tree.
BOUND_BUILTIN_METHODS = frozenset({
    "append", "appendleft", "add", "extend", "update", "insert", "remove",
    "discard", "pop", "popleft", "clear", "setdefault", "sort", "reverse",
})

#: Decorators that vouch for a callable's copy safety at runtime
#: (``repro.sim.snapshot.snapshot_safe``) or route it through the task
#: layer's own ``__deepcopy__`` machinery
#: (``repro.guest.task.restartable_body``).  The static rules trust them.
SNAPSHOT_SAFE_DECORATORS = frozenset({"snapshot_safe", "restartable_body"})

#: Mutation method names used to detect writes to module-level mutables.
MUTATOR_METHODS = frozenset({
    "append", "appendleft", "add", "extend", "update", "insert", "remove",
    "discard", "pop", "popleft", "popitem", "clear", "setdefault", "sort",
})

# ---------------------------------------------------------------------------
# Cache-key soundness (VSL5xx)
# ---------------------------------------------------------------------------
#: Third-party packages whose code is *not* covered by the result cache's
#: code fingerprint but is version-pinned by the environment; importing
#: them does not constitute a fingerprint gap.  Everything else non-stdlib
#: does.
FINGERPRINTED_THIRD_PARTY = frozenset({"numpy", "np"})

#: Hidden-input blessings: ``modname -> {function qualname -> reason}``.
#: A blessed function may read the environment or the filesystem even
#: where the rules would otherwise flag a hidden result input.  Every
#: entry must say *why the read cannot make two equal cache keys map to
#: different results*.
HIDDEN_INPUT_BLESSED = {
    "repro.sim.engine": {
        # The three process-mode knobs.  They change how results are
        # *computed*, never what they are: the A/B identity CI jobs prove
        # byte-identical tables across backend x tickless x snapshot, and
        # the snapshot store folds all three into its prefix keys anyway
        # (prefix_store_key).
        "elision_default": "mode knob; byte-identity across settings is "
                           "CI-enforced and snapstore keys fold it in",
        "snapshot_default": "mode knob; fork-vs-cold byte-identity is "
                            "CI-enforced (abdiff --snapshot-modes)",
        "engine_backend_default": "mode knob; backend byte-identity is "
                                  "CI-enforced (abdiff --backends)",
    },
    "repro.experiments.cache": {
        # The fingerprint is the cache key's code input itself; reading
        # the tree to compute it is the mechanism, not a hidden input.
        "_fingerprint_tree": "computes the code fingerprint that *is* "
                             "part of every unit key",
        # The cache's own entry files are keyed by the full unit key;
        # reading them returns a value previously stored under the same
        # key, so the read cannot alias two different inputs.
        "ResultCache.lookup": "reads its own content-addressed entries",
        "ResultCache.store": "writes its own content-addressed entries",
    },
    "repro.experiments.parallel": {
        # $VSCHED_REPRO_JOBS decides how many units run at once, never
        # what any unit computes; unit bodies receive data, not workers.
        "default_jobs": "worker-count knob; concurrency only, results "
                        "are per-unit pure functions regardless",
    },
}

# ---------------------------------------------------------------------------
# Cross-unit leakage (VSL6xx)
# ---------------------------------------------------------------------------
#: Process-level state blessings: ``modname -> {state name -> reason}``.
#: A blessed module-level (or ``Class.attr``) name may be written at
#: simulation time.  Every entry must say why persistence across units in
#: a warm pooled worker cannot change any unit's *result*.
PROCESS_STATE_BLESSED = {
    "repro.experiments.snapstore": {
        "_process_store": "the intentional per-process snapshot store; "
                          "entries are content-addressed by code "
                          "fingerprint + prefix chain + mode, and abdiff "
                          "--snapshot-modes proves fork==cold",
    },
    "repro.experiments.cache": {
        "_fingerprint_memo": "memo of a pure function of the source tree; "
                             "the tree cannot change mid-run",
    },
    "repro.experiments.parallel": {
        "_default_jobs": "parent-process orchestration knob (worker "
                         "count); never read inside a unit body",
        "_last_stats": "parent-process bench telemetry, written after "
                       "units complete; never read inside a unit body",
    },
    "repro.guest.pelt": {
        "_DECAY_CACHE": "memo table of y^p decay powers — a pure "
                        "function of its key, so warm entries are "
                        "byte-identical to cold recomputation",
    },
    "repro.sim.snapshot": {
        "_SAFE_CALLBACKS": "decorator registry, appended at function "
                           "definition time (import), deterministic per "
                           "code version",
    },
    "repro.guest.task": {
        "_RESTARTABLE_BODIES": "decorator registry, appended at function "
                               "definition time (import), deterministic "
                               "per code version",
    },
    "repro.sim.engine": {
        "Engine.total_events_fired": "process-wide telemetry; units "
                                     "report deltas, results never read it",
        "Engine.total_events_elided": "process-wide telemetry (deltas)",
        "Engine.total_pushes": "process-wide telemetry (deltas)",
        "Engine.total_cancels": "process-wide telemetry (deltas)",
        "Engine.total_dead_drops": "process-wide telemetry (deltas)",
        "Engine.total_cascades": "process-wide telemetry (deltas)",
        "Engine.profile_data": "opt-in profiling table, rendered for "
                               "humans by profile_table(); no result "
                               "reads it",
    },
}
