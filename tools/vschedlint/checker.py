"""Module discovery, the per-file rule pipeline, and the whole-program pass.

The run has two stages.  Stage one is per-file: parse, run the AST rules
(VSL1xx–3xx, policy-gated per tree), scan suppressions, and distill the
file into a cacheable :class:`~vschedlint.index.FileRecord`; a file whose
SHA-256 matches the on-disk index cache skips all of that.  Stage two is
whole-program: a :class:`~vschedlint.index.ProjectIndex` over all records
feeds the snapshot-safety, cache-key, and leakage families (VSL4xx–6xx).
Suppressions apply *after* both stages, so one ``# vschedlint: disable``
comment can silence either kind — and an unused suppression is only
reported once the whole-program rules have had their chance to use it.
"""

from __future__ import annotations

import ast
from collections import defaultdict
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple

from vschedlint import (cachekeys, config, determinism, elision, index,
                        layering, leakage, snapshot_safety)
from vschedlint.callgraph import CallGraph
from vschedlint.findings import Finding, finalize_fingerprints
from vschedlint.index import FileRecord, IndexCache, ProjectIndex
from vschedlint.suppressions import (Suppression, apply_suppressions,
                                     scan_suppressions)


class Module:
    """One parsed source file plus the indexes the rules share."""

    def __init__(self, path: Path, display_path: str, modname: str,
                 tree_kind: str, source: Optional[str] = None):
        self.path = display_path
        self.modname = modname
        self.tree_kind = tree_kind       # "repro" | "tools" | "tests"
        self.source = path.read_text() if source is None else source
        self.lines = self.source.splitlines()
        self.tree = ast.parse(self.source, filename=display_path)
        parts = modname.split(".")
        self.layer: Optional[str] = (parts[1] if tree_kind == "repro"
                                     and len(parts) > 1 else None)
        policy = config.TREE_POLICIES[tree_kind]
        self.allow_wallclock = policy.get("allow_wallclock", False)
        self.allow_identity = policy.get("allow_identity", False)
        self.allow_seeded_rng = policy.get("allow_seeded_rng", False)
        self.dict_view_sinks = policy.get("dict_view_sinks", True)
        self._index_functions()

    def _index_functions(self) -> None:
        """Build (def node, qualname) pairs and a line -> def-lines map."""
        self._functions: List[Tuple[ast.AST, str]] = []
        spans: List[Tuple[int, int, int, str]] = []

        def walk(node, prefix):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qual = f"{prefix}{child.name}"
                    self._functions.append((child, qual))
                    spans.append((child.lineno, child.end_lineno or
                                  child.lineno, child.lineno, qual))
                    walk(child, qual + ".")
                elif isinstance(child, ast.ClassDef):
                    walk(child, f"{prefix}{child.name}.")
                else:
                    walk(child, prefix)

        walk(self.tree, "")
        self.spans = sorted(spans)

    def functions(self):
        return list(self._functions)

    def symbol_at(self, line: int) -> str:
        """Qualname of the innermost function containing ``line``."""
        best = ""
        for start, end, _, qual in self.spans:
            if start <= line <= end:
                best = qual  # spans are sorted; later matches are inner
        return best

    def def_lines_of(self, line: int) -> List[int]:
        """Def lines of all functions enclosing ``line``, innermost first."""
        hits = [(start, dl) for start, end, dl, _ in self.spans
                if start <= line <= end]
        return [dl for _, dl in sorted(hits, reverse=True)]


def classify(path: Path) -> Optional[Tuple[str, str]]:
    """(dotted module name, tree kind) for a source file, else None.

    The ``repro`` tree anchors at the last ``repro`` path component (the
    layer is the next component); ``tools`` and ``tests`` trees anchor at
    their directory names.  Files belonging to none of the three are not
    linted.
    """
    parts = list(path.with_suffix("").parts)
    for anchor, tree in (("repro", "repro"), ("tools", "tools"),
                         ("tests", "tests")):
        if anchor in parts:
            idx = len(parts) - 1 - parts[::-1].index(anchor)
            mod = parts[idx:]
            if mod[-1] == "__init__":
                mod = mod[:-1]
            if anchor == "repro":
                return ".".join(mod), tree
            return ".".join(mod), tree
    return None


def discover(paths: Iterable[str]) -> List[Tuple[Path, str]]:
    """Expand CLI paths into (file, display_path) pairs, sorted.

    Directory expansion skips ``__pycache__`` and ``fixtures`` subtrees
    (the vschedlint test fixtures are deliberate violations); explicitly
    named files always lint.
    """
    out = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            for f in sorted(p.rglob("*.py")):
                if config.EXCLUDED_DIR_COMPONENTS.intersection(f.parts):
                    continue
                out.append((f, str(f)))
        elif p.suffix == ".py":
            out.append((p, str(p)))
        else:
            raise FileNotFoundError(f"not a python file or directory: {raw}")
    return out


def _per_file_rules(module: Module) -> List[Finding]:
    """The policy-gated single-file rules (VSL1xx–3xx)."""
    policy = config.TREE_POLICIES[module.tree_kind]
    families = policy["families"]
    findings: List[Finding] = []
    if "layering" in families:
        layering.check_imports(module, findings)
        layering.check_guest_abi(module, findings)
    if "layering" in families or policy.get("heap_encapsulation"):
        layering.check_heap_encapsulation(module, findings)
    if "determinism" in families:
        determinism.check_clocks_and_rng(module, findings)
        determinism.check_unordered_iteration(module, findings)
    if "elision" in families:
        elision.check_elision_sync(module, findings)
    return findings


def build_record(path: Path, display_path: str,
                 source: str) -> Optional[FileRecord]:
    """Parse one file, run per-file rules, distill to a record."""
    classified = classify(path)
    if classified is None:
        return None
    modname, tree = classified
    try:
        module = Module(path, display_path, modname, tree, source=source)
    except SyntaxError as exc:
        rec = FileRecord(path=display_path, modname=modname, tree=tree,
                         layer=None, sha=index.sha256_text(source))
        rec.findings = [index._finding_to_json(Finding(
            "layer-unknown", display_path, exc.lineno or 1, 0,
            f"cannot parse: {exc.msg}", modname=modname))]
        return rec

    findings = _per_file_rules(module)
    suppressions = scan_suppressions(module.lines, display_path, findings)
    return index.extract(module, findings, suppressions)


def collect_records(paths: Iterable[str],
                    cache: Optional[IndexCache] = None) -> List[FileRecord]:
    cache = cache or IndexCache(None)
    records: List[FileRecord] = []
    for path, display in discover(paths):
        source = path.read_text()
        sha = index.sha256_text(source)
        rec = cache.get(display, sha)
        if rec is None:
            rec = build_record(path, display, source)
            if rec is not None:
                cache.put(rec)
        if rec is not None:
            records.append(rec)
    cache.prune(p for p in list(cache._entries)
                if Path(p).exists())
    cache.save()
    return records


def lint_records(records: List[FileRecord],
                 changed: Optional[Set[str]] = None) -> List[Finding]:
    """Whole-program pass + suppression application over records."""
    project = ProjectIndex(records)
    whole_program: List[Finding] = []
    repro_records = project.repro_records()
    if repro_records:
        graph = CallGraph(project)
        snapshot_safety.check_snapshot_safety(project, graph,
                                              whole_program)
        cachekeys.check_cachekeys(project, graph, whole_program)
        leakage.check_leakage(project, whole_program)

    by_path: Dict[str, List[Finding]] = defaultdict(list)
    for rec in records:
        by_path[rec.path].extend(index.finding_from_json(d)
                                 for d in rec.findings)
    for f in whole_program:
        by_path[f.path].append(f)

    findings: List[Finding] = []
    for rec in records:
        file_findings = by_path[rec.path]
        sups = {int(ln): Suppression(int(ln), d["rules"], d["reason"])
                for ln, d in rec.suppressions.items()}
        def_line_map = {f.line: rec.def_lines_of(f.line)
                        for f in file_findings}
        findings.extend(apply_suppressions(file_findings, sups,
                                           def_line_map, rec.path))

    if changed is not None:
        # ``changed`` holds resolved absolute paths (git speaks
        # repo-root-relative; the CLI may be pointed anywhere).
        findings = [f for f in findings
                    if str(Path(f.path).resolve()) in changed]
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    finalize_fingerprints(findings)
    return findings


def lint_paths(paths: Iterable[str],
               cache: Optional[IndexCache] = None,
               changed: Optional[Set[str]] = None) -> List[Finding]:
    """Lint files/directories; returns findings with fingerprints set."""
    return lint_records(collect_records(paths, cache), changed=changed)
