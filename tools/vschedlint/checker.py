"""Module discovery and the per-file rule pipeline."""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from vschedlint import config, determinism, elision, layering
from vschedlint.findings import Finding, finalize_fingerprints
from vschedlint.suppressions import apply_suppressions, scan_suppressions


class Module:
    """One parsed source file plus the indexes the rules share."""

    def __init__(self, path: Path, display_path: str, modname: str):
        self.path = display_path
        self.modname = modname
        self.source = path.read_text()
        self.lines = self.source.splitlines()
        self.tree = ast.parse(self.source, filename=display_path)
        parts = modname.split(".")
        self.layer: Optional[str] = parts[1] if len(parts) > 1 else None
        self._index_functions()

    def _index_functions(self) -> None:
        """Build (def node, qualname) pairs and a line -> def-lines map."""
        self._functions: List[Tuple[ast.AST, str]] = []
        spans: List[Tuple[int, int, int, str]] = []

        def walk(node, prefix):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qual = f"{prefix}{child.name}"
                    self._functions.append((child, qual))
                    spans.append((child.lineno, child.end_lineno or
                                  child.lineno, child.lineno, qual))
                    walk(child, qual + ".")
                elif isinstance(child, ast.ClassDef):
                    walk(child, f"{prefix}{child.name}.")
                else:
                    walk(child, prefix)

        walk(self.tree, "")
        self._spans = sorted(spans)

    def functions(self):
        return list(self._functions)

    def symbol_at(self, line: int) -> str:
        """Qualname of the innermost function containing ``line``."""
        best = ""
        for start, end, _, qual in self._spans:
            if start <= line <= end:
                best = qual  # spans are sorted; later matches are inner
        return best

    def def_lines_of(self, line: int) -> List[int]:
        """Def lines of all functions enclosing ``line``, innermost first."""
        hits = [(start, dl) for start, end, dl, _ in self._spans
                if start <= line <= end]
        return [dl for _, dl in sorted(hits, reverse=True)]


def _modname_for(path: Path) -> Optional[str]:
    """Dotted module name, anchored at the last ``repro`` path component."""
    parts = list(path.with_suffix("").parts)
    if "repro" not in parts:
        return None
    idx = len(parts) - 1 - parts[::-1].index("repro")
    mod = parts[idx:]
    if mod[-1] == "__init__":
        mod = mod[:-1]
    return ".".join(mod)


def discover(paths: Iterable[str]) -> List[Tuple[Path, str]]:
    """Expand CLI paths into (file, display_path) pairs, sorted."""
    out = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            for f in sorted(p.rglob("*.py")):
                if "__pycache__" in f.parts:
                    continue
                out.append((f, str(f)))
        elif p.suffix == ".py":
            out.append((p, str(p)))
        else:
            raise FileNotFoundError(f"not a python file or directory: {raw}")
    return out


def lint_module(path: Path, display_path: str) -> List[Finding]:
    modname = _modname_for(path)
    if modname is None:
        return []  # not inside a repro package tree; nothing to check
    try:
        module = Module(path, display_path, modname)
    except SyntaxError as exc:
        return [Finding("layer-unknown", display_path, exc.lineno or 1, 0,
                        f"cannot parse: {exc.msg}", modname=modname)]

    findings: List[Finding] = []
    layering.check_imports(module, findings)
    layering.check_guest_abi(module, findings)
    layering.check_heap_encapsulation(module, findings)
    determinism.check_clocks_and_rng(module, findings)
    determinism.check_unordered_iteration(module, findings)
    elision.check_elision_sync(module, findings)

    suppressions = scan_suppressions(module.lines, display_path, findings)
    def_line_map: Dict[int, List[int]] = {
        f.line: module.def_lines_of(f.line) for f in findings}
    return apply_suppressions(findings, suppressions, def_line_map,
                              display_path)


def lint_paths(paths: Iterable[str]) -> List[Finding]:
    """Lint files/directories; returns findings with fingerprints set."""
    findings: List[Finding] = []
    for path, display in discover(paths):
        findings.extend(lint_module(path, display))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    finalize_fingerprints(findings)
    return findings
