"""Baseline: accepted pre-existing findings, keyed by fingerprint.

The baseline may only shrink.  Each entry records the finding's rule and
message at acceptance time; a finding whose fingerprint is in the baseline
is reported as ``baselined`` and does not fail the run.  An entry that no
longer matches any finding is a ``stale-baseline`` finding — it must be
deleted (the violation is gone; keeping the entry would let it return).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List

from vschedlint.findings import Finding

VERSION = 1


def load_baseline(path: Path) -> Dict[str, dict]:
    if not path.exists():
        return {}
    data = json.loads(path.read_text())
    if data.get("version") != VERSION:
        raise ValueError(
            f"{path}: unsupported baseline version {data.get('version')!r}")
    return data.get("entries", {})


def apply_baseline(findings: List[Finding], entries: Dict[str, dict],
                   baseline_path: str) -> None:
    """Mark baselined findings; append stale-baseline findings in place."""
    matched = set()
    for f in findings:
        if f.fingerprint in entries:
            f.baselined = True
            matched.add(f.fingerprint)
    for fp, entry in sorted(entries.items()):
        if fp not in matched:
            findings.append(Finding(
                "stale-baseline", baseline_path, 1, 0,
                f"baseline entry {fp} ({entry.get('rule', '?')}: "
                f"{entry.get('message', '?')}) matches no current finding; "
                f"delete it — the baseline may only shrink"))


def write_baseline(findings: List[Finding], path: Path) -> int:
    """Write all non-meta findings as the new baseline; returns the count."""
    entries = {
        f.fingerprint: {
            "rule": f.rule,
            "module": f.modname,
            "symbol": f.symbol,
            "message": f.message,
        }
        for f in findings
        if f.fingerprint  # meta findings carry no fingerprint
    }
    payload = {"version": VERSION, "entries": dict(sorted(entries.items()))}
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return len(entries)
