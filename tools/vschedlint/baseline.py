"""Baseline: accepted pre-existing findings, keyed by fingerprint.

The baseline may only shrink.  Each entry records the finding's rule and
message at acceptance time; a finding whose fingerprint is in the baseline
is reported as ``baselined`` and does not fail the run.  An entry that no
longer matches any finding is a ``stale-baseline`` finding — it must be
deleted (the violation is gone; keeping the entry would let it return).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List

from vschedlint.findings import Finding

VERSION = 1


def load_baseline(path: Path) -> Dict[str, dict]:
    if not path.exists():
        return {}
    data = json.loads(path.read_text())
    if data.get("version") != VERSION:
        raise ValueError(
            f"{path}: unsupported baseline version {data.get('version')!r}")
    return data.get("entries", {})


def apply_baseline(findings: List[Finding], entries: Dict[str, dict],
                   baseline_path: str, report_stale: bool = True) -> None:
    """Mark baselined findings; append stale-baseline findings in place.

    ``report_stale=False`` is for partial views (``--changed``): an entry
    that matched nothing may simply live in a file outside the view.
    """
    matched = set()
    for f in findings:
        if f.fingerprint in entries:
            f.baselined = True
            matched.add(f.fingerprint)
    if not report_stale:
        return
    for fp, entry in sorted(entries.items()):
        if fp not in matched:
            findings.append(Finding(
                "stale-baseline", baseline_path, 1, 0,
                f"baseline entry {fp} ({entry.get('rule', '?')}: "
                f"{entry.get('message', '?')}) matches no current finding; "
                f"delete it — the baseline may only shrink"))


class BaselineGrowthError(ValueError):
    """Rewriting the baseline would add entries it does not have today."""


def write_baseline(findings: List[Finding], path: Path) -> int:
    """Rewrite the baseline from current findings; returns the count.

    The baseline may only shrink: an entry that is not already accepted
    cannot be added by ``--write-baseline`` — new findings are fixed or
    suppressed inline with a reason, never swept under the baseline.
    """
    entries = {
        f.fingerprint: {
            "rule": f.rule,
            "module": f.modname,
            "symbol": f.symbol,
            "message": f.message,
        }
        for f in findings
        if f.fingerprint  # meta findings carry no fingerprint
    }
    if path.exists():
        existing = load_baseline(path)
        grown = sorted(set(entries) - set(existing))
        if grown:
            detail = "; ".join(
                f"{fp} ({entries[fp]['rule']} in "
                f"{entries[fp]['module'] or '?'})" for fp in grown[:5])
            more = f" (+{len(grown) - 5} more)" if len(grown) > 5 else ""
            raise BaselineGrowthError(
                f"refusing to grow the baseline: {len(grown)} finding(s) "
                f"are not in {path} — fix them or add an inline "
                f"'# vschedlint: disable=<rule> -- <reason>' suppression "
                f"[{detail}{more}]")
    payload = {"version": VERSION, "entries": dict(sorted(entries.items()))}
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return len(entries)
