"""Layering and guest/host isolation rules (VSL10x).

Three checks:

* ``layer-order`` — a module may import only from layers of equal or lower
  rank in the declared graph (config.LAYER_RANK), modulo the neutral
  modules.
* ``guest-isolation`` — guest-side layers may not import from
  ``repro.hypervisor`` at all (the paper's "no hypervisor changes"
  boundary), except names in the explicit allowlist.
* ``heap-encapsulation`` — ``heapq`` imports and ``._heap`` attribute
  access are reserved to ``repro.sim`` (the engine backends).  Everything
  else schedules through the Engine API, so the event store stays
  swappable (binary heap vs timer wheel) without callers growing
  structural assumptions about it.
* ``guest-abi`` — in guest-side code, attribute access on hypervisor
  handles (``*.vcpu``, ``*.vm``, ``*.machine``) must stay inside the
  guest-visible ABI: steal time, halt/kick, activity transitions, and the
  measurement-physics channels.  Handle tracking is a deliberately simple
  local dataflow (attribute chains, ``vcpus[i]`` subscripts, direct
  assignments, ``for``-over-``vcpus`` targets) — precise enough for this
  tree, conservative enough to stay quiet elsewhere.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional

from vschedlint import config
from vschedlint.findings import Finding

# Handle kinds for the local dataflow.
VCPU, VCPU_LIST, VM, MACHINE, MACH_TOPO, MACH_CACHE = (
    "vcpu", "vcpu_list", "vm", "machine", "mach_topo", "mach_cache")


def _layer_of(modname: str) -> Optional[str]:
    parts = modname.split(".")
    if len(parts) < 2 or parts[0] != "repro":
        return None
    return parts[1]


def check_imports(module, findings: List[Finding]) -> None:
    """layer-order + guest-isolation on import statements."""
    layer = module.layer
    if layer is None:
        return
    my_rank = config.LAYER_RANK.get(layer)
    if my_rank is None:
        findings.append(Finding(
            "layer-unknown", module.path, 1, 0,
            f"subpackage {layer!r} is not in the declared layer graph "
            f"(tools/vschedlint/config.py LAYER_RANK)", modname=module.modname))
        return
    guest_side = layer in config.GUEST_SIDE_LAYERS

    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            targets = [(a.name, None) for a in node.names]
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:  # resolve relative imports against this module
                parts = module.modname.split(".")[: -node.level]
                base = ".".join(parts + ([base] if base else []))
            targets = [(base, a.name) for a in node.names]
        else:
            continue
        for target_mod, name in targets:
            if not target_mod.startswith("repro"):
                continue
            # `from repro.x import y` may pull a submodule: check both.
            full = f"{target_mod}.{name}" if name else target_mod
            if (target_mod in config.NEUTRAL_MODULES
                    or full in config.NEUTRAL_MODULES):
                continue
            tgt_layer = _layer_of(target_mod)
            if tgt_layer is None:
                continue  # the repro package root
            tgt_rank = config.LAYER_RANK.get(tgt_layer)
            if tgt_rank is None:
                continue  # reported once when that module itself is scanned
            if tgt_rank > my_rank:
                findings.append(Finding(
                    "layer-order", module.path, node.lineno, node.col_offset,
                    f"{layer} (rank {my_rank}) imports {target_mod} "
                    f"({tgt_layer}, rank {tgt_rank})",
                    symbol=module.symbol_at(node.lineno),
                    modname=module.modname))
            if guest_side and (target_mod == config.HOST_PACKAGE
                               or target_mod.startswith(
                                   config.HOST_PACKAGE + ".")):
                allowed = config.GUEST_IMPORT_ALLOWLIST.get(target_mod, ())
                if name is None or name not in allowed:
                    what = f"{target_mod}.{name}" if name else target_mod
                    findings.append(Finding(
                        "guest-isolation", module.path, node.lineno,
                        node.col_offset,
                        f"guest-side layer {layer!r} imports host-side "
                        f"{what}; the guest may only see the ABI allowlist "
                        f"(steal time, halt/kick, activity, measurement "
                        f"physics)",
                        symbol=module.symbol_at(node.lineno),
                        modname=module.modname))


def check_heap_encapsulation(module, findings: List[Finding]) -> None:
    """heap-encapsulation: heapq/_heap stay inside the engine backends."""
    owner = config.HEAP_OWNER_PACKAGE
    if module.modname == owner or module.modname.startswith(owner + "."):
        return
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            hit = any(a.name == "heapq" or a.name.startswith("heapq.")
                      for a in node.names)
        elif isinstance(node, ast.ImportFrom):
            hit = node.level == 0 and node.module == "heapq"
        elif isinstance(node, ast.Attribute):
            hit = node.attr == "_heap"
        else:
            continue
        if hit:
            what = ("backend-private attribute '_heap'"
                    if isinstance(node, ast.Attribute) else "heapq")
            findings.append(Finding(
                "heap-encapsulation", module.path, node.lineno,
                node.col_offset,
                f"direct use of {what} outside {owner}; schedule through "
                f"the Engine API so the event store stays swappable",
                symbol=module.symbol_at(node.lineno),
                modname=module.modname))


class _AbiVisitor(ast.NodeVisitor):
    """Track hypervisor handles through local names and check accesses."""

    def __init__(self, module, findings: List[Finding]):
        self.module = module
        self.findings = findings
        self.scopes: List[Dict[str, str]] = [{}]

    # -- scope management ------------------------------------------------
    def visit_FunctionDef(self, node):
        self.scopes.append({})
        self.generic_visit(node)
        self.scopes.pop()

    visit_AsyncFunctionDef = visit_FunctionDef

    def _bind(self, target, kind: Optional[str]) -> None:
        if isinstance(target, ast.Name):
            if kind is None:
                self.scopes[-1].pop(target.id, None)
            else:
                self.scopes[-1][target.id] = kind

    def _lookup(self, name: str) -> Optional[str]:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        return None

    # -- handle-kind inference -------------------------------------------
    def kind_of(self, node) -> Optional[str]:
        if isinstance(node, ast.Name):
            return self._lookup(node.id)
        if isinstance(node, ast.Subscript):
            if self.kind_of(node.value) == VCPU_LIST:
                return VCPU
            return None
        if isinstance(node, ast.Attribute):
            base = self.kind_of(node.value)
            if base == MACHINE:
                return {"topology": MACH_TOPO, "cache": MACH_CACHE}.get(
                    node.attr)
            if base in (VCPU, VM, MACH_TOPO, MACH_CACHE):
                if base == VM and node.attr == "vcpus":
                    return VCPU_LIST
                if base == VM and node.attr == "machine":
                    return MACHINE
                if base == VCPU and node.attr == "vm":
                    return VM
                return None
            # Naming conventions root the chains: anything called .vcpu /
            # .vm / .machine in guest-side code is a hypervisor handle.
            if node.attr == "vcpu":
                return VCPU
            if node.attr == "vcpus":
                return VCPU_LIST
            if node.attr == "vm":
                return VM
            if node.attr in ("machine", "_machine"):
                return MACHINE
        return None

    # -- bindings ---------------------------------------------------------
    def visit_Assign(self, node):
        kind = self.kind_of(node.value)
        for tgt in node.targets:
            self._bind(tgt, kind)
        self.generic_visit(node)

    def visit_For(self, node):
        it = node.iter
        kind = None
        if self.kind_of(it) == VCPU_LIST:
            kind = VCPU
        elif (isinstance(it, ast.Call) and isinstance(it.func, ast.Name)
              and it.func.id == "enumerate" and it.args
              and self.kind_of(it.args[0]) == VCPU_LIST):
            # for i, v in enumerate(vm.vcpus): the second target is a vCPU
            if isinstance(node.target, ast.Tuple) and len(
                    node.target.elts) == 2:
                self._bind(node.target.elts[1], VCPU)
            kind = None
        if kind is not None:
            self._bind(node.target, kind)
        self.generic_visit(node)

    # -- the actual check --------------------------------------------------
    _ABI = {
        VCPU: (config.VCPU_ABI, "vCPU"),
        VM: (config.VM_ABI, "VM"),
        MACHINE: (config.MACHINE_ABI, "Machine"),
        MACH_TOPO: (config.MACHINE_TOPOLOGY_ABI, "Machine.topology"),
        MACH_CACHE: (config.MACHINE_CACHE_ABI, "Machine.cache"),
    }

    def visit_Attribute(self, node):
        base = self.kind_of(node.value)
        entry = self._ABI.get(base)
        if entry is not None:
            allowed, label = entry
            if node.attr not in allowed:
                self.findings.append(Finding(
                    "guest-abi", self.module.path, node.lineno,
                    node.col_offset,
                    f"guest-side access to {label}.{node.attr} is outside "
                    f"the guest-visible ABI "
                    f"(allowed: {', '.join(sorted(allowed))})",
                    symbol=self.module.symbol_at(node.lineno),
                    modname=self.module.modname))
        self.generic_visit(node)


def check_guest_abi(module, findings: List[Finding]) -> None:
    if module.layer not in config.GUEST_SIDE_LAYERS:
        return
    _AbiVisitor(module, findings).visit(module.tree)
