"""Inline suppressions: ``# vschedlint: disable=<rule>[,<rule>] -- reason``.

A suppression comment on a line silences matching findings on that line; a
suppression on a ``def`` line silences matching findings anywhere in that
function.  The reason (after ``--``) is mandatory: a silenced invariant
with no recorded justification is itself a finding (``bad-suppression``),
and so is a suppression that no longer silences anything
(``unused-suppression``) — suppressions must pull their weight or go.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

from vschedlint.findings import RULES, UNSUPPRESSABLE, Finding

_PATTERN = re.compile(
    r"#\s*vschedlint:\s*disable=(?P<rules>[a-z0-9_,\s-]+?)"
    r"(?:\s*--\s*(?P<reason>.*\S))?\s*$")


def _comment_tokens(source_lines: List[str]) -> Iterator[
        Tuple[int, int, str]]:
    """(lineno, col, text) for every real comment token.

    Tokenizing (rather than grepping lines) keeps string literals that
    merely *mention* the suppression syntax — the linter's own docstrings,
    test fixtures built from source strings — from parsing as comments.
    """
    buf = io.StringIO("\n".join(source_lines) + "\n")
    try:
        for tok in tokenize.generate_tokens(buf.readline):
            if tok.type == tokenize.COMMENT:
                yield tok.start[0], tok.start[1], tok.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return  # unparseable tail; the checker reports the syntax error


@dataclass
class Suppression:
    line: int
    rules: List[str]
    reason: str
    used: bool = False


def scan_suppressions(source_lines: List[str], path: str,
                      findings: List[Finding]) -> Dict[int, Suppression]:
    """Parse all suppression comments; emit bad-suppression findings."""
    out: Dict[int, Suppression] = {}
    for lineno, col, text in _comment_tokens(source_lines):
        # A suppression is its own comment ("# vschedlint: ..."); doc
        # comments quoting the syntax mid-sentence are not directives.
        if re.match(r"#\s*vschedlint:", text) is None:
            continue
        m = _PATTERN.search(text)
        if m is None:
            findings.append(Finding(
                "bad-suppression", path, lineno, col,
                "unparseable vschedlint comment (expected "
                "'# vschedlint: disable=<rule> -- <reason>')"))
            continue
        rules = [r.strip() for r in m.group("rules").split(",") if r.strip()]
        reason = (m.group("reason") or "").strip()
        bad = False
        for rule in rules:
            if rule not in RULES or rule in UNSUPPRESSABLE:
                findings.append(Finding(
                    "bad-suppression", path, lineno, m.start(),
                    f"unknown or unsuppressable rule {rule!r}"))
                bad = True
        if not reason:
            findings.append(Finding(
                "bad-suppression", path, lineno, m.start(),
                "suppression without a reason (append ' -- <why this is "
                "sound>')"))
            bad = True
        if not bad:
            out[lineno] = Suppression(lineno, rules, reason)
    return out


def apply_suppressions(findings: List[Finding],
                       suppressions: Dict[int, Suppression],
                       def_line_of: Dict[int, List[int]],
                       path: str) -> List[Finding]:
    """Drop suppressed findings; report suppressions that did nothing.

    ``def_line_of`` maps a source line to the ``def`` lines of its
    enclosing functions, innermost first.
    """
    kept: List[Finding] = []
    for f in findings:
        if f.rule in UNSUPPRESSABLE:
            kept.append(f)
            continue
        candidates = [f.line] + def_line_of.get(f.line, [])
        hit = None
        for ln in candidates:
            sup = suppressions.get(ln)
            if sup is not None and f.rule in sup.rules:
                hit = sup
                break
        if hit is not None:
            hit.used = True
        else:
            kept.append(f)
    for sup in suppressions.values():
        if not sup.used:
            kept.append(Finding(
                "unused-suppression", path, sup.line, 0,
                f"suppression of {','.join(sup.rules)} matches no finding; "
                f"remove it"))
    return kept
