"""Text and JSON reporters."""

from __future__ import annotations

import json
from collections import Counter
from typing import List

from vschedlint.findings import Finding


def render_text(findings: List[Finding]) -> str:
    lines = []
    active = [f for f in findings if not f.baselined]
    baselined = [f for f in findings if f.baselined]
    for f in active:
        lines.append(f.render())
    if baselined:
        lines.append(f"({len(baselined)} baselined finding(s) not shown; "
                     f"run with --show-baselined to list them)")
    if active:
        by_family = Counter(f.family for f in active)
        summary = ", ".join(f"{n} {fam}" for fam, n in sorted(
            by_family.items()))
        lines.append(f"{len(active)} finding(s): {summary}")
    else:
        lines.append("clean: no findings")
    return "\n".join(lines)


def render_text_full(findings: List[Finding]) -> str:
    lines = [f.render() + ("  (baselined)" if f.baselined else "")
             for f in findings]
    active = sum(1 for f in findings if not f.baselined)
    lines.append(f"{active} active finding(s), "
                 f"{len(findings) - active} baselined")
    return "\n".join(lines)


def render_json(findings: List[Finding]) -> str:
    active = [f for f in findings if not f.baselined]
    payload = {
        "version": 1,
        "counts": {
            "active": len(active),
            "baselined": len(findings) - len(active),
            "by_family": dict(sorted(
                Counter(f.family for f in active).items())),
        },
        "findings": [f.to_json() for f in findings],
    }
    return json.dumps(payload, indent=2)
