"""Text, JSON, SARIF, and JSON-lines reporters."""

from __future__ import annotations

import json
from collections import Counter
from typing import List

from vschedlint.findings import RULES, Finding


def render_text(findings: List[Finding]) -> str:
    lines = []
    active = [f for f in findings if not f.baselined]
    baselined = [f for f in findings if f.baselined]
    for f in active:
        lines.append(f.render())
    if baselined:
        lines.append(f"({len(baselined)} baselined finding(s) not shown; "
                     f"run with --show-baselined to list them)")
    if active:
        by_family = Counter(f.family for f in active)
        summary = ", ".join(f"{n} {fam}" for fam, n in sorted(
            by_family.items()))
        lines.append(f"{len(active)} finding(s): {summary}")
    else:
        lines.append("clean: no findings")
    return "\n".join(lines)


def render_text_full(findings: List[Finding]) -> str:
    lines = [f.render() + ("  (baselined)" if f.baselined else "")
             for f in findings]
    active = sum(1 for f in findings if not f.baselined)
    lines.append(f"{active} active finding(s), "
                 f"{len(findings) - active} baselined")
    return "\n".join(lines)


def render_json(findings: List[Finding]) -> str:
    active = [f for f in findings if not f.baselined]
    payload = {
        "version": 1,
        "counts": {
            "active": len(active),
            "baselined": len(findings) - len(active),
            "by_family": dict(sorted(
                Counter(f.family for f in active).items())),
        },
        "findings": [f.to_json() for f in findings],
    }
    return json.dumps(payload, indent=2)


def render_jsonl(findings: List[Finding]) -> str:
    """One finding per line — greppable, streamable, diffable."""
    return "\n".join(json.dumps(f.to_json(), sort_keys=True)
                     for f in findings)


def render_sarif(findings: List[Finding]) -> str:
    """SARIF 2.1.0 for code-scanning UIs; active findings only."""
    from vschedlint import __version__

    active = [f for f in findings if not f.baselined]
    used_rules = sorted({f.rule for f in active},
                        key=lambda slug: RULES[slug][0])
    rules = [{
        "id": RULES[slug][0],
        "name": slug,
        "shortDescription": {"text": RULES[slug][2]},
        "helpUri": f"docs/INTERNALS.md#{RULES[slug][0].lower()}",
        "properties": {"family": RULES[slug][1]},
    } for slug in used_rules]
    results = [{
        "ruleId": f.rule_id,
        "level": "error",
        "message": {"text": f.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {"uri": f.path},
                "region": {"startLine": f.line,
                           "startColumn": f.col + 1},
            },
        }],
        "partialFingerprints": {"vschedlint/v1": f.fingerprint},
    } for f in active]
    payload = {
        "$schema": ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json"),
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {"name": "vschedlint",
                                "version": __version__,
                                "rules": rules}},
            "results": results,
        }],
    }
    return json.dumps(payload, indent=2)
