import sys

from vschedlint.cli import main

sys.exit(main())
