"""vschedlint: static invariant checker for the vSched reproduction.

The simulator's correctness rests on contracts that ordinary tests cannot
see being *almost* violated:

* **Layering / guest isolation** — the paper's central claim is "no
  hypervisor changes": guest-side code (``guest``/``core``/``probers``/
  ``workloads``) may observe host state only through the interfaces a real
  KVM guest has (steal time, halt/kick, its own timestamps, and the
  physics of measurements it can perform, like cache-line latency).
  Reaching into ``repro.hypervisor`` for anything else is an oracle read
  that silently invalidates the reproduction.
* **Determinism** — the A/B harness (``tools/abdiff.py``), the result
  cache, and the chaos drills all assume byte-identical replays.  A single
  wall-clock read, unseeded RNG draw, object-identity sort key, or
  unordered ``set`` iteration feeding the event heap breaks that quietly.
* **Tickless catch-up discipline** — tick elision (INTERNALS §11) is only
  sound if every reader or mutator of tick-replayed state calls
  ``_catch_up()`` (or a registered sync hook) first.
* **Snapshot safety** — a callable registered into the simulated world
  (``Engine.call_at``, listener lists) must survive ``copy.deepcopy`` or
  a warm-start fork aliases the original world (VSL4xx, the static twin
  of ``guard_world``).
* **Cache-key soundness** — every input to a unit's result must be in its
  cache key: imports inside the code fingerprint, no hidden environment
  or file reads (VSL5xx).
* **Cross-unit isolation** — no module- or class-level state written at
  simulation time may leak between units sharing a warm pooled worker
  (VSL6xx).

v1 checked one file at a time; v2 builds a whole-program project index
(with an on-disk incremental cache) so the last three families can reason
across modules.  See ``docs/INTERNALS.md`` §12 and §16 for the rule
catalogue, the suppression syntax (``# vschedlint: disable=<rule> --
<reason>``), blessing registries, and baseline semantics.
"""

from vschedlint.checker import lint_paths
from vschedlint.findings import Finding, RULES

__version__ = "2.0.0"

__all__ = ["lint_paths", "Finding", "RULES", "__version__"]
