"""vschedlint: static invariant checker for the vSched reproduction.

The simulator's correctness rests on three contracts that ordinary tests
cannot see being *almost* violated:

* **Layering / guest isolation** — the paper's central claim is "no
  hypervisor changes": guest-side code (``guest``/``core``/``probers``/
  ``workloads``) may observe host state only through the interfaces a real
  KVM guest has (steal time, halt/kick, its own timestamps, and the
  physics of measurements it can perform, like cache-line latency).
  Reaching into ``repro.hypervisor`` for anything else is an oracle read
  that silently invalidates the reproduction.
* **Determinism** — the A/B harness (``tools/abdiff.py``), the result
  cache, and the chaos drills all assume byte-identical replays.  A single
  wall-clock read, unseeded RNG draw, object-identity sort key, or
  unordered ``set`` iteration feeding the event heap breaks that quietly.
* **Tickless catch-up discipline** — tick elision (INTERNALS §11) is only
  sound if every reader or mutator of tick-replayed state calls
  ``_catch_up()`` (or a registered sync hook) first.

``vschedlint`` walks the AST of ``src/repro`` and enforces all three.  See
``docs/INTERNALS.md`` §12 for the rule catalogue, the suppression syntax
(``# vschedlint: disable=<rule> -- <reason>``), and baseline semantics.
"""

from vschedlint.checker import lint_paths
from vschedlint.findings import Finding, RULES

__version__ = "1.0.0"

__all__ = ["lint_paths", "Finding", "RULES", "__version__"]
