"""A conservative, name-based call graph over the project index.

Nodes are ``module:qualname`` strings.  Edges come from the per-function
call summaries the index records:

* a **bare** call ``foo()`` resolves to a nested def of the caller, a
  module-level function of the caller's module, or a function imported by
  name — exact resolution, no guessing;
* a **self/cls** call ``self.meth()`` resolves to methods named ``meth``
  of the caller's own class first, falling back to every method of that
  name in the caller's module (subclass dispatch);
* an **attribute** call ``obj.meth()`` resolves to *every* function named
  ``meth`` in the repro tree — deliberate over-approximation, since the
  receiver's type is unknown.

Known trade-offs (documented in INTERNALS §16): the over-approximation on
attribute calls can only make *more* code reachable (safe for the rules
that use reachability to widen scrutiny, e.g. hidden-input checks inside
work-unit bodies); under-approximation exists for calls through values
(callables stored in dicts, getattr dispatch) — such edges are invisible,
which is why the snapshot-safety family checks every registration site in
the tree rather than only reachable ones.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

from vschedlint.index import FileRecord, FunctionInfo, ProjectIndex


def node_id(rec: FileRecord, qual: str) -> str:
    return f"{rec.modname}:{qual}"


class CallGraph:
    """Adjacency over ``module:qualname`` nodes, repro tree only."""

    def __init__(self, index: ProjectIndex):
        self.index = index
        self.edges: Dict[str, Set[str]] = {}
        for rec in index.repro_records():
            for qual, d in rec.functions.items():
                info = FunctionInfo.from_json(d)
                self.edges[node_id(rec, qual)] = self._callees(
                    rec, qual, info)

    def _callees(self, rec: FileRecord, qual: str,
                 info: FunctionInfo) -> Set[str]:
        out: Set[str] = set()
        for kind, name in info.calls:
            if kind == "bare":
                hit = self.index.resolve_function(rec, name,
                                                  context_qual=qual)
                if hit is not None:
                    out.add(node_id(hit[0], hit[1].qual))
            elif kind == "selfattr":
                cls = info.cls
                found = False
                if cls is not None:
                    own = rec.function(f"{cls}.{name}")
                    if own is not None:
                        out.add(node_id(rec, own.qual))
                        found = True
                if not found:
                    for r2, f2 in self.index.functions_named(name):
                        if r2.modname == rec.modname and f2.cls is not None:
                            out.add(node_id(r2, f2.qual))
            else:  # attr: any same-named function in the tree
                for r2, f2 in self.index.functions_named(name):
                    if r2.tree == "repro":
                        out.add(node_id(r2, f2.qual))
        return out

    def reachable_from(self, roots: Iterable[str]) -> Set[str]:
        """Transitive closure over the edge relation."""
        seen: Set[str] = set()
        stack = [r for r in roots if r in self.edges]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self.edges.get(node, ()) - seen)
        return seen


def unit_root_nodes(index: ProjectIndex) -> List[str]:
    """Call-graph nodes of every callable handed to WorkUnit/PrefixSpec.

    These are the functions a warm pooled worker executes per unit — the
    code whose hidden inputs must be part of the unit's cache key, and
    whose registrations land inside snapshot-covered worlds.
    """
    roots: List[str] = []
    for rec in index.repro_records():
        for site in rec.root_sites:
            summary = site.get("func_summary") or {}
            name = None
            if summary.get("form") == "name":
                name = summary["id"]
            elif summary.get("form") == "attr":
                name = summary["attr"]
            if not name:
                continue
            hit = index.resolve_function(rec, name)
            if hit is None and summary.get("form") == "attr":
                hit = index.resolve_method(rec, name)
            if hit is not None:
                roots.append(node_id(hit[0], hit[1].qual))
    return sorted(set(roots))
