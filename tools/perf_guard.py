#!/usr/bin/env python3
"""Perf guard: fail CI when the event budget regresses.

Runs a small pinned set of fast experiments and compares their
``events_fired`` against the checked-in baseline
(``tools/perf_baseline.json``).  The simulator is deterministic — fired
counts are exact and platform-independent — so a count above baseline
means a real regression in the engine or in timer elision, not noise.
The tolerance absorbs small intentional drifts; bigger deliberate changes
should refresh the baseline with ``--write`` in the same commit.

Usage::

    PYTHONPATH=src python tools/perf_guard.py          # check (CI)
    PYTHONPATH=src python tools/perf_guard.py --write  # refresh baseline
"""

from __future__ import annotations

import argparse
import json
import os
import sys

if __package__ is None or __package__ == "":
    # Allow running without PYTHONPATH=src from the repo root.
    _src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    if _src not in sys.path:
        sys.path.insert(0, _src)

from repro.experiments.common import run_experiment
from repro.sim.engine import Engine

BASELINE_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                             "perf_baseline.json")
#: Allowed events_fired growth over baseline before the guard fails.
TOLERANCE_PCT = 10.0
#: Pinned fast experiments: one host-churn-bound, one spin-bound.
PINNED = ("fig2", "fig4")


def measure(exp_id: str) -> dict:
    fired0 = Engine.total_events_fired
    elided0 = Engine.total_events_elided
    run_experiment(exp_id, fast=True)
    return {"events_fired": Engine.total_events_fired - fired0,
            "events_elided": Engine.total_events_elided - elided0}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Guard the deterministic event budget of pinned fast "
                    "experiments against the checked-in baseline.")
    parser.add_argument("--write", action="store_true",
                        help="rewrite the baseline from a fresh run")
    args = parser.parse_args(argv)

    measured = {exp_id: measure(exp_id) for exp_id in PINNED}
    if args.write:
        payload = {"tolerance_pct": TOLERANCE_PCT, "fast": True,
                   "experiments": measured}
        with open(BASELINE_PATH, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"wrote {BASELINE_PATH}")
        return 0

    with open(BASELINE_PATH) as fh:
        baseline = json.load(fh)
    tolerance = baseline.get("tolerance_pct", TOLERANCE_PCT)
    failures = []
    for exp_id, row in measured.items():
        base = baseline["experiments"][exp_id]["events_fired"]
        fired = row["events_fired"]
        delta = 100.0 * (fired - base) / base
        verdict = "ok"
        if delta > tolerance:
            verdict = f"REGRESSED (> +{tolerance:.0f}%)"
            failures.append(exp_id)
        elif delta < -tolerance:
            verdict = "improved (consider --write)"
        print(f"{exp_id:8s} fired={fired:>12,d} baseline={base:>12,d} "
              f"{delta:+6.2f}%  elided={row['events_elided']:>11,d} "
              f"[{verdict}]")
    if failures:
        print(f"event budget regressed: {failures}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
