#!/usr/bin/env python3
"""Perf guard: fail CI when the event budget regresses.

Runs a small pinned set of fast experiments under *both* engine backends
and compares their ``events_fired`` against the checked-in baseline
(``tools/perf_baseline.json``).  The simulator is deterministic — fired
counts are exact and platform-independent — so a count above baseline
means a real regression in the engine or in timer elision, not noise.
The tolerance absorbs small intentional drifts; bigger deliberate changes
should refresh the baseline with ``--write`` in the same commit.

The backend axis has **zero** tolerance: the event store decides how fast
entries are filed and popped, never *what* runs, so the wheel backend's
fired budget must equal the heap's exactly.  A single baseline per
experiment covers both backends for the same reason.

One prefix-migrated experiment (``SNAP_PINNED``) is additionally
measured with warm-start forking on *and* off (INTERNALS §15).  Both
modes carry their own fired budget — the fork budget guards the prefix
sharing itself (a regression here means units stopped forking and went
back to rebuilding), and ``fork < cold`` is asserted outright since the
whole point of forking is to not re-fire shared-prefix events.

Usage::

    PYTHONPATH=src python tools/perf_guard.py          # check (CI)
    PYTHONPATH=src python tools/perf_guard.py --write  # refresh baseline
"""

from __future__ import annotations

import argparse
import json
import os
import sys

if __package__ is None or __package__ == "":
    # Allow running without PYTHONPATH=src from the repo root.
    _src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    if _src not in sys.path:
        sys.path.insert(0, _src)

from repro.experiments.common import run_experiment
from repro.sim.engine import Engine

BASELINE_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                             "perf_baseline.json")
#: Allowed events_fired growth over baseline before the guard fails.
TOLERANCE_PCT = 10.0
#: Pinned fast experiments: one host-churn-bound, one spin-bound.
PINNED = ("fig2", "fig4")
#: Prefix-migrated experiment measured under snapshot fork AND cold mode.
#: fig14 shares 2 warm-up prefixes across 20 units, so cold mode re-fires
#: each prefix 10x and the fork budget sits well below the cold one.
#: Measured on the reference backend only — backend equality for the
#: migrated experiments is the ab-identity shard's job.
SNAP_PINNED = ("fig14",)
SNAP_MODES = ("fork", "cold")
#: Event-store backends: identical fired budgets required (exactly — the
#: store never decides *what* runs).
BACKENDS = ("heap", "wheel")


def measure(exp_id: str, backend: str, snapshot: bool = True) -> dict:
    saved = os.environ.get("VSCHED_REPRO_ENGINE")
    saved_snap = os.environ.get("VSCHED_REPRO_SNAPSHOT")
    os.environ["VSCHED_REPRO_ENGINE"] = backend
    os.environ["VSCHED_REPRO_SNAPSHOT"] = "1" if snapshot else "0"
    try:
        fired0 = Engine.total_events_fired
        elided0 = Engine.total_events_elided
        run_experiment(exp_id, fast=True)
        return {"events_fired": Engine.total_events_fired - fired0,
                "events_elided": Engine.total_events_elided - elided0}
    finally:
        for var, val in (("VSCHED_REPRO_ENGINE", saved),
                         ("VSCHED_REPRO_SNAPSHOT", saved_snap)):
            if val is None:
                os.environ.pop(var, None)
            else:
                os.environ[var] = val


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Guard the deterministic event budget of pinned fast "
                    "experiments against the checked-in baseline.")
    parser.add_argument("--write", action="store_true",
                        help="rewrite the baseline from a fresh run")
    args = parser.parse_args(argv)

    measured = {exp_id: {backend: measure(exp_id, backend)
                         for backend in BACKENDS}
                for exp_id in PINNED}
    snap_measured = {exp_id: {mode: measure(exp_id, BACKENDS[0],
                                            snapshot=(mode == "fork"))
                              for mode in SNAP_MODES}
                     for exp_id in SNAP_PINNED}

    # Backend equality first: exact, no tolerance, applies to --write too
    # (a baseline written from divergent backends would be meaningless).
    failures = []
    for exp_id, per_backend in measured.items():
        ref = per_backend[BACKENDS[0]]["events_fired"]
        for backend in BACKENDS[1:]:
            fired = per_backend[backend]["events_fired"]
            if fired != ref:
                print(f"{exp_id:8s} backend {backend!r} fired={fired:,d} "
                      f"!= {BACKENDS[0]!r} fired={ref:,d} (must be exact)")
                failures.append(f"{exp_id}:{backend}")
    # Structural snapshot invariant, independent of any baseline: forking
    # must fire strictly fewer events than cold prefix rebuilds, or the
    # units silently stopped sharing their warm-up.
    for exp_id, per_mode in snap_measured.items():
        fork = per_mode["fork"]["events_fired"]
        cold = per_mode["cold"]["events_fired"]
        if fork >= cold:
            print(f"{exp_id:8s} fork fired={fork:,d} >= cold "
                  f"fired={cold:,d} (prefix sharing is not engaging)")
            failures.append(f"{exp_id}:fork>=cold")
    if failures:
        print(f"budget invariants violated: {failures}")
        return 1

    if args.write:
        payload = {"tolerance_pct": TOLERANCE_PCT, "fast": True,
                   "backends": list(BACKENDS),
                   "experiments": {exp_id: per_backend[BACKENDS[0]]
                                   for exp_id, per_backend in
                                   measured.items()},
                   "snapshot_experiments": snap_measured}
        with open(BASELINE_PATH, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"wrote {BASELINE_PATH}")
        return 0

    with open(BASELINE_PATH) as fh:
        baseline = json.load(fh)
    tolerance = baseline.get("tolerance_pct", TOLERANCE_PCT)

    def judge(exp_id: str, label: str, fired: int, base: int,
              elided: int) -> None:
        delta = 100.0 * (fired - base) / base
        verdict = "ok"
        if delta > tolerance:
            verdict = f"REGRESSED (> +{tolerance:.0f}%)"
            failures.append(f"{exp_id}:{label}")
        elif delta < -tolerance:
            verdict = "improved (consider --write)"
        print(f"{exp_id:8s} {label:5s} fired={fired:>12,d} "
              f"baseline={base:>12,d} {delta:+6.2f}%  "
              f"elided={elided:>11,d} [{verdict}]")

    for exp_id, per_backend in measured.items():
        base = baseline["experiments"][exp_id]["events_fired"]
        for backend in BACKENDS:
            row = per_backend[backend]
            judge(exp_id, backend, row["events_fired"], base,
                  row["events_elided"])
    for exp_id, per_mode in snap_measured.items():
        for mode in SNAP_MODES:
            row = per_mode[mode]
            base = baseline["snapshot_experiments"][exp_id][mode][
                "events_fired"]
            judge(exp_id, mode, row["events_fired"], base,
                  row["events_elided"])
    if failures:
        print(f"event budget regressed: {failures}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
