#!/usr/bin/env python3
"""Perf guard: fail CI when the event budget regresses.

Runs a small pinned set of fast experiments under *both* engine backends
and compares their ``events_fired`` against the checked-in baseline
(``tools/perf_baseline.json``).  The simulator is deterministic — fired
counts are exact and platform-independent — so a count above baseline
means a real regression in the engine or in timer elision, not noise.
The tolerance absorbs small intentional drifts; bigger deliberate changes
should refresh the baseline with ``--write`` in the same commit.

The backend axis has **zero** tolerance: the event store decides how fast
entries are filed and popped, never *what* runs, so the wheel backend's
fired budget must equal the heap's exactly.  A single baseline per
experiment covers both backends for the same reason.

Usage::

    PYTHONPATH=src python tools/perf_guard.py          # check (CI)
    PYTHONPATH=src python tools/perf_guard.py --write  # refresh baseline
"""

from __future__ import annotations

import argparse
import json
import os
import sys

if __package__ is None or __package__ == "":
    # Allow running without PYTHONPATH=src from the repo root.
    _src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    if _src not in sys.path:
        sys.path.insert(0, _src)

from repro.experiments.common import run_experiment
from repro.sim.engine import Engine

BASELINE_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                             "perf_baseline.json")
#: Allowed events_fired growth over baseline before the guard fails.
TOLERANCE_PCT = 10.0
#: Pinned fast experiments: one host-churn-bound, one spin-bound.
PINNED = ("fig2", "fig4")
#: Event-store backends: identical fired budgets required (exactly — the
#: store never decides *what* runs).
BACKENDS = ("heap", "wheel")


def measure(exp_id: str, backend: str) -> dict:
    saved = os.environ.get("VSCHED_REPRO_ENGINE")
    os.environ["VSCHED_REPRO_ENGINE"] = backend
    try:
        fired0 = Engine.total_events_fired
        elided0 = Engine.total_events_elided
        run_experiment(exp_id, fast=True)
        return {"events_fired": Engine.total_events_fired - fired0,
                "events_elided": Engine.total_events_elided - elided0}
    finally:
        if saved is None:
            os.environ.pop("VSCHED_REPRO_ENGINE", None)
        else:
            os.environ["VSCHED_REPRO_ENGINE"] = saved


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Guard the deterministic event budget of pinned fast "
                    "experiments against the checked-in baseline.")
    parser.add_argument("--write", action="store_true",
                        help="rewrite the baseline from a fresh run")
    args = parser.parse_args(argv)

    measured = {exp_id: {backend: measure(exp_id, backend)
                         for backend in BACKENDS}
                for exp_id in PINNED}

    # Backend equality first: exact, no tolerance, applies to --write too
    # (a baseline written from divergent backends would be meaningless).
    failures = []
    for exp_id, per_backend in measured.items():
        ref = per_backend[BACKENDS[0]]["events_fired"]
        for backend in BACKENDS[1:]:
            fired = per_backend[backend]["events_fired"]
            if fired != ref:
                print(f"{exp_id:8s} backend {backend!r} fired={fired:,d} "
                      f"!= {BACKENDS[0]!r} fired={ref:,d} (must be exact)")
                failures.append(f"{exp_id}:{backend}")
    if failures:
        print(f"backend fired budgets diverged: {failures}")
        return 1

    if args.write:
        payload = {"tolerance_pct": TOLERANCE_PCT, "fast": True,
                   "backends": list(BACKENDS),
                   "experiments": {exp_id: per_backend[BACKENDS[0]]
                                   for exp_id, per_backend in
                                   measured.items()}}
        with open(BASELINE_PATH, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"wrote {BASELINE_PATH}")
        return 0

    with open(BASELINE_PATH) as fh:
        baseline = json.load(fh)
    tolerance = baseline.get("tolerance_pct", TOLERANCE_PCT)
    for exp_id, per_backend in measured.items():
        base = baseline["experiments"][exp_id]["events_fired"]
        for backend in BACKENDS:
            row = per_backend[backend]
            fired = row["events_fired"]
            delta = 100.0 * (fired - base) / base
            verdict = "ok"
            if delta > tolerance:
                verdict = f"REGRESSED (> +{tolerance:.0f}%)"
                failures.append(f"{exp_id}:{backend}")
            elif delta < -tolerance:
                verdict = "improved (consider --write)"
            print(f"{exp_id:8s} {backend:5s} fired={fired:>12,d} "
                  f"baseline={base:>12,d} {delta:+6.2f}%  "
                  f"elided={row['events_elided']:>11,d} [{verdict}]")
    if failures:
        print(f"event budget regressed: {failures}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
