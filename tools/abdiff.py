#!/usr/bin/env python3
"""A/B determinism harness for tickless timer elision.

Runs each experiment twice in one process — elision ON, then OFF (via
``VSCHED_REPRO_TICKLESS``, read at Machine/GuestConfig construction) —
and asserts the result tables are **byte-identical**.  Elision is a pure
event-count optimisation: skipped guest ticks are replayed arithmetically
and suppressed host timers fire logically at the same instants, so any
table divergence is a correctness bug, not noise.

Also reports the event-reduction ratio per experiment (off/on fired
events) and the elided count, which is where the speedup claim in
BENCH_*.json comes from.

Usage::

    PYTHONPATH=src python tools/abdiff.py --fast
    PYTHONPATH=src python tools/abdiff.py --fast --experiments fig2,fig4
"""

from __future__ import annotations

import argparse
import os
import sys

if __package__ is None or __package__ == "":
    # Allow running without PYTHONPATH=src from the repo root.
    _src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    if _src not in sys.path:
        sys.path.insert(0, _src)

from repro.experiments.cli import ALL_ORDER
from repro.experiments.common import run_experiment
from repro.sim.engine import Engine


def table_bytes(table) -> str:
    """Canonical byte-comparable form of a result table.

    ``repr`` keeps full float precision — two runs that differ in any
    bit of any cell produce different blobs even when the rendered
    (rounded) table would look the same.
    """
    return repr(table.columns) + "\n" + "\n".join(
        repr(row) for row in table.rows)


def run_once(exp_id: str, fast: bool, tickless: bool):
    os.environ["VSCHED_REPRO_TICKLESS"] = "1" if tickless else "0"
    fired0 = Engine.total_events_fired
    elided0 = Engine.total_events_elided
    table = run_experiment(exp_id, fast=fast)
    return (table_bytes(table),
            Engine.total_events_fired - fired0,
            Engine.total_events_elided - elided0)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Assert experiments are byte-identical with timer "
                    "elision on vs off, and report the event savings.")
    parser.add_argument("--fast", action="store_true",
                        help="shrunken workloads (recommended)")
    parser.add_argument("--experiments", default=None, metavar="IDS",
                        help="comma-separated experiment ids "
                             "(default: the full catalogue)")
    args = parser.parse_args(argv)

    ids = (args.experiments.split(",") if args.experiments else ALL_ORDER)
    ids = [i.strip() for i in ids if i.strip()]

    saved_env = os.environ.get("VSCHED_REPRO_TICKLESS")
    diverged = []
    total_on = total_off = 0
    try:
        for exp_id in ids:
            on_blob, on_fired, on_elided = run_once(exp_id, args.fast, True)
            off_blob, off_fired, _ = run_once(exp_id, args.fast, False)
            total_on += on_fired
            total_off += off_fired
            identical = on_blob == off_blob
            ratio = off_fired / on_fired if on_fired else float("inf")
            status = "identical" if identical else "DIVERGED"
            print(f"{exp_id:8s} on={on_fired:>12,d} off={off_fired:>12,d} "
                  f"x{ratio:5.2f} elided={on_elided:>11,d}  [{status}]",
                  flush=True)
            if not identical:
                diverged.append(exp_id)
                on_lines = on_blob.splitlines()
                off_lines = off_blob.splitlines()
                for a, b in zip(on_lines, off_lines):
                    if a != b:
                        print(f"  on : {a}")
                        print(f"  off: {b}")
    finally:
        if saved_env is None:
            os.environ.pop("VSCHED_REPRO_TICKLESS", None)
        else:
            os.environ["VSCHED_REPRO_TICKLESS"] = saved_env

    overall = total_off / total_on if total_on else float("inf")
    print(f"total    on={total_on:>12,d} off={total_off:>12,d} "
          f"x{overall:5.2f}")
    if diverged:
        print(f"DIVERGED: {diverged}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
