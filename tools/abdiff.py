#!/usr/bin/env python3
"""A/B determinism harness: tickless elision × engine backend.

Runs each experiment once per combination of two axes in one process and
asserts every result table is **byte-identical** to the reference
combination (first backend, elision on):

* ``VSCHED_REPRO_TICKLESS`` on/off — elision is a pure event-count
  optimisation: skipped guest ticks are replayed arithmetically and
  suppressed host timers fire logically at the same instants.
* ``VSCHED_REPRO_ENGINE`` heap/wheel (``--backends``) — event storage is
  a pluggable backend behind the engine's dispatch loop; the timer wheel
  must reproduce the heap's pop order bit-for-bit, elided or not.
* ``VSCHED_REPRO_SNAPSHOT`` on/off (``--snapshot-modes``) — warm-start
  prefix forking (INTERNALS §15) must render the same bytes as cold
  rebuilds of every prefix chain through the same builder code.

Any table divergence on any axis is a correctness bug, not noise.
Fired-event counts must also agree *across backends* for the same
tickless setting (the backends store the same events; only the data
structure differs), and that is checked here too.

Also reports the event-reduction ratio per experiment (off/on fired
events) and the elided count, which is where the speedup claim in
BENCH_*.json comes from.

Usage::

    PYTHONPATH=src python tools/abdiff.py --fast
    PYTHONPATH=src python tools/abdiff.py --fast --experiments fig2,fig4
    PYTHONPATH=src python tools/abdiff.py --fast --backends heap,wheel
    PYTHONPATH=src python tools/abdiff.py --fast --snapshot-modes
"""

from __future__ import annotations

import argparse
import os
import sys

if __package__ is None or __package__ == "":
    # Allow running without PYTHONPATH=src from the repo root.
    _src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    if _src not in sys.path:
        sys.path.insert(0, _src)

from repro.experiments.cli import ALL_ORDER
from repro.experiments.common import run_experiment
from repro.sim.engine import Engine


def table_bytes(table) -> str:
    """Canonical byte-comparable form of a result table.

    ``repr`` keeps full float precision — two runs that differ in any
    bit of any cell produce different blobs even when the rendered
    (rounded) table would look the same.
    """
    return repr(table.columns) + "\n" + "\n".join(
        repr(row) for row in table.rows)


def run_once(exp_id: str, fast: bool, tickless: bool, backend: str,
             snapshot: bool = True):
    os.environ["VSCHED_REPRO_TICKLESS"] = "1" if tickless else "0"
    os.environ["VSCHED_REPRO_ENGINE"] = backend
    os.environ["VSCHED_REPRO_SNAPSHOT"] = "1" if snapshot else "0"
    fired0 = Engine.total_events_fired
    elided0 = Engine.total_events_elided
    table = run_experiment(exp_id, fast=fast)
    return (table_bytes(table),
            Engine.total_events_fired - fired0,
            Engine.total_events_elided - elided0)


def _diff_blobs(label: str, ref: str, got: str) -> None:
    for a, b in zip(ref.splitlines(), got.splitlines()):
        if a != b:
            print(f"  ref          : {a}")
            print(f"  {label:13s}: {b}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Assert experiments are byte-identical across timer "
                    "elision on/off and engine backends, and report the "
                    "event savings.")
    parser.add_argument("--fast", action="store_true",
                        help="shrunken workloads (recommended)")
    parser.add_argument("--experiments", default=None, metavar="IDS",
                        help="comma-separated experiment ids "
                             "(default: the full catalogue)")
    parser.add_argument("--backends", default="heap", metavar="NAMES",
                        help="comma-separated engine backends; the first "
                             "is the reference (default: heap)")
    parser.add_argument("--snapshot-modes", action="store_true",
                        help="add the warm-start axis: run every combo "
                             "with prefix forking on AND off (off rebuilds "
                             "every prefix chain cold)")
    args = parser.parse_args(argv)

    ids = (args.experiments.split(",") if args.experiments else ALL_ORDER)
    ids = [i.strip() for i in ids if i.strip()]
    backends = [b.strip() for b in args.backends.split(",") if b.strip()]
    snap_modes = (True, False) if args.snapshot_modes else (True,)
    combos = [(b, t, s) for b in backends for t in (True, False)
              for s in snap_modes]

    saved_tickless = os.environ.get("VSCHED_REPRO_TICKLESS")
    saved_backend = os.environ.get("VSCHED_REPRO_ENGINE")
    saved_snapshot = os.environ.get("VSCHED_REPRO_SNAPSHOT")
    diverged = []
    totals = {c: 0 for c in combos}
    try:
        for exp_id in ids:
            results = {}
            for combo in combos:
                backend, tickless, snap = combo
                results[combo] = run_once(exp_id, args.fast, tickless,
                                          backend, snap)
                totals[combo] += results[combo][1]
            ref_combo = combos[0]
            ref_blob, ref_on_fired, _ = results[ref_combo]
            off_fired = results[(backends[0], False, snap_modes[0])][1]
            ratio = (off_fired / ref_on_fired if ref_on_fired
                     else float("inf"))
            for combo in combos:
                backend, tickless, snap = combo
                label = f"{backend}/{'on' if tickless else 'off'}"
                if args.snapshot_modes:
                    label += f"/{'fork' if snap else 'cold'}"
                blob, fired, elided = results[combo]
                bad = []
                if blob != ref_blob:
                    bad.append("table")
                # Same tickless and snapshot settings => the same events
                # fire; only the storage structure differs between
                # backends.  (Across snapshot modes the *tables* must
                # match but the fired counts must not: forking simulates
                # each shared prefix once instead of per unit.)
                if fired != results[(backends[0], tickless, snap)][1]:
                    bad.append("fired-count")
                status = "identical" if not bad else \
                    "DIVERGED(" + ",".join(bad) + ")"
                if combo == ref_combo:
                    status = "reference"
                print(f"{exp_id:8s} {label:14s} fired={fired:>12,d} "
                      f"elided={elided:>11,d}  [{status}]", flush=True)
                if bad:
                    diverged.append(f"{exp_id}:{label}")
                    if "table" in bad:
                        _diff_blobs(label, ref_blob, blob)
            print(f"{exp_id:8s} elision savings x{ratio:5.2f} "
                  f"(off/on fired, {backends[0]})", flush=True)
    finally:
        for var, saved in (("VSCHED_REPRO_TICKLESS", saved_tickless),
                           ("VSCHED_REPRO_ENGINE", saved_backend),
                           ("VSCHED_REPRO_SNAPSHOT", saved_snapshot)):
            if saved is None:
                os.environ.pop(var, None)
            else:
                os.environ[var] = saved

    for combo in combos:
        backend, tickless, snap = combo
        label = f"{backend}/{'on' if tickless else 'off'}"
        if args.snapshot_modes:
            label += f"/{'fork' if snap else 'cold'}"
        print(f"total    {label:14s} fired={totals[combo]:>12,d}")
    if diverged:
        print(f"DIVERGED: {diverged}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
