#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md: paper-vs-measured for every table/figure.

Runs every experiment (fast mode by default; --full for the paper-scale
campaign), records the rendered tables and whether the qualitative shape
assertions held, and writes the comparison document.

Usage:  python tools/make_experiments_md.py [--full] [--only fig2,fig3]
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.cli import ALL_ORDER
from repro.experiments.common import check_experiment, run_experiment

#: What the paper reports, per artifact, for the side-by-side summary.
PAPER_CLAIMS = {
    "fig2": "p95 tail latency grows up to 20x as vCPU latency goes "
            "2 ms -> 16 ms, with and without best-effort tasks",
    "fig3": "the default scheduler leaves the thread stalled ~50% of the "
            "time; circular self-migration doubles vCPU utilization",
    "fig4": "non-work-conserving placement wins: up to 43% (straggler), "
            "up to 30% (stacking), up to 6.7x (priority inversion)",
    "fig10a": "EMA capacity tracks real capacity changes while smoothing "
              "out short spikes",
    "fig10b": "distinct latency classes: ~6 ns SMT, ~48 ns intra-socket, "
              "~112 ns cross-socket, infinity for the stacked pair",
    "tab2": "probing is sub-second: rcvm 547/388 ms (full/validate), hpvm "
            "665/160 ms; validation cheaper, rcvm's dominated by stacking "
            "confirmation",
    "fig11": "asymmetric: fast-vCPU residency 44% -> 81% and +32% "
             "throughput with vcap; symmetric: 74% fewer migrations, +4%",
    "fig12": "underloaded: 11-12 -> 15-16 active cores with vtop; mixed: "
             "Matmul +18%, Nginx +5%, Fio unchanged",
    "fig13": "vtop: +26% throughput and +14.5% IPC on average, up to 99% "
             "fewer IPIs",
    "fig14": "bvs cuts p95 tail latency 42% on average across Tailbench, "
             "with and without best-effort tasks",
    "tab3": "bvs cuts Masstree queue time 44-70%; dropping the vCPU state "
            "check forfeits part of the gain under best-effort tasks",
    "fig15": "ivh: up to 82% higher throughput with few threads, ~17% "
             "average even at 16 threads",
    "tab4": "activity-aware migration beats the activity-unaware variant "
            "at every thread count (e.g. 348 s vs 408 s at 1 thread)",
    "fig16": "vSched matches CFS when dedicated, sustains throughput when "
             "overcommitted/asymmetric, and recovers quickly when "
             "constrained",
    "fig17": "vSched: +15% (intermittent), +24% (consistent), ~equal "
             "(transient); co-located VMs degrade only 1-2%",
    "fig18": "rcvm: enhanced CFS 1.4x lower latency / +59% throughput; "
             "vSched 1.6x / +69% vs CFS",
    "fig19": "hpvm: enhanced CFS 1.5x lower latency / +13% throughput; "
             "vSched 2.3x / +18% vs CFS",
    "fig20": "throughput workloads: +5.5% cycles for +38% CPS under "
             "vSched; latency workloads: +50.5% cycles from an 8.4x lower "
             "CPS baseline",
    "fig21": "0.7% average degradation on a dedicated VM; latency "
             "workloads can even improve (probing keeps cores warm)",
}

HEADER = """# EXPERIMENTS — paper vs. measured

Every table and figure of the vSched paper (EuroSys '25), regenerated on
this repository's simulated substrate.  Absolute numbers are **not**
expected to match the paper (its testbed is an HPE DL580 running patched
Linux; ours is a discrete-event simulator) — the comparison below is about
*shape*: who wins, by roughly what factor, and where the crossovers are.
Each experiment carries programmatic shape assertions (`check_*` in
`src/repro/experiments/`), run automatically by `pytest benchmarks/`.

Regenerate this file:

```bash
python tools/make_experiments_md.py          # fast mode
python tools/make_experiments_md.py --full   # paper-scale campaign
```

Known, deliberate deviations of this substrate (details in DESIGN.md):

* vtop probing times land at roughly 30-600 ms against the paper's
  160-665 ms, and the relations hold: validation beats full probing,
  stacking confirmation dominates rcvm's validation, and hpvm's full
  probe is the most expensive.
* rwc's straggler trigger is recalibrated from "10x below average" to "3x
  below median": host wake-up credit lets even a heavily hogged vCPU burst
  briefly, compressing the measured capacity range.
* In the multi-tenant experiment (fig17) the nginx gains track the paper,
  but the *intermittent-phase* neighbours (facesim/ferret) degrade by tens
  of percent instead of the paper's 1.2%: on this substrate the cycles
  vSched reclaims for its fair share directly stretch the neighbours'
  barrier phases.  The consistent-phase neighbour impact (~2%) matches.
* Mode = {mode}.

---

"""


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--full", action="store_true")
    parser.add_argument("--only", default=None)
    parser.add_argument("--out", default="EXPERIMENTS.md")
    args = parser.parse_args()
    fast = not args.full
    ids = args.only.split(",") if args.only else ALL_ORDER

    sections = []
    for exp_id in ids:
        started = time.time()
        print(f"running {exp_id}...", flush=True)
        table = run_experiment(exp_id, fast=fast)
        try:
            check_experiment(exp_id, table)
            verdict = "shape checks PASSED"
        except AssertionError as exc:
            verdict = f"shape checks FAILED: {exc}"
        elapsed = time.time() - started
        sections.append(
            f"## {exp_id}\n\n"
            f"**Paper:** {PAPER_CLAIMS[exp_id]}\n\n"
            f"**Measured** ({elapsed:.0f}s wall):\n\n"
            f"```\n{table.render()}\n```\n\n"
            f"**Verdict:** {verdict}\n\n---\n"
        )
        print(f"  {verdict} ({elapsed:.0f}s)", flush=True)

    mode = "full (paper-scale)" if args.full else "fast (shrunken workloads)"
    with open(args.out, "w") as fh:
        fh.write(HEADER.format(mode=mode))
        fh.write("\n".join(sections))
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
