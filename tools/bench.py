#!/usr/bin/env python3
"""Benchmark the experiment catalogue: wall-clock, events fired, events/sec.

Runs each experiment (fast mode recommended) and writes a JSON report,
``BENCH_<YYYYMMDD>.json`` by default, so engine-hot-path changes can be
compared run over run.  Experiments that expose the work-unit protocol are
timed per scenario, so the report shows where the seconds go inside the
heavy experiments; with ``--cache`` the report also counts unit cache
hits/misses (a warm rerun of an unchanged tree is all hits).

Each row (and the report header) also carries a ``snapshot`` block — the
warm-start store's hit/miss/fork/cold-build counts and the prefix seconds
saved by forking frozen worlds instead of replaying warm-ups
(``docs/INTERNALS.md`` §15).  ``$VSCHED_REPRO_SNAPSHOT=0`` turns forking
off, which is how the A/B win is measured: same command, flip the env
var, compare ``total_wall_s``.

With ``--jobs N`` (N > 1) the catalogue runs as one supervised campaign
through the flat scheduler: per-scenario wall/events come from the worker
measurements, scenario rows carry their retry ``attempts``, and the
report's ``supervisor`` block records retry/requeue/timeout/kill/respawn
counts — under ``$VSCHED_REPRO_CHAOS`` that is the fault-recovery bill.

Engine-backend axis: ``--backend heap,wheel`` runs the catalogue once per
event-store backend (via ``$VSCHED_REPRO_ENGINE``).  Every experiment row
records its ``engine_backend`` plus the engine counter deltas
(pushes/cancels/dead_drops/cascades); the report's top-level totals stay
the first backend's (trajectory-comparable with older snapshots) and the
other backends land under ``backend_runs``.

``--engine-micro`` benchmarks the storage backends themselves —
push / push+cancel / pop throughput at 1k/10k/100k pending timers —
either standalone (no catalogue flags) or alongside a catalogue run, in
which case the numbers are embedded in the report as ``engine_micro``.

Usage::

    PYTHONPATH=src python tools/bench.py --fast
    PYTHONPATH=src python tools/bench.py --fast --experiments fig2,fig14
    PYTHONPATH=src python tools/bench.py --fast --jobs 4
    PYTHONPATH=src python tools/bench.py --fast --cache --cache-dir .c
    PYTHONPATH=src python tools/bench.py --fast --profile fig14
    PYTHONPATH=src python tools/bench.py --engine-micro
    PYTHONPATH=src python tools/bench.py --fast --jobs 4 \
        --backend heap,wheel --engine-micro
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import platform
import sys
import time

if __package__ is None or __package__ == "":
    # Allow running without PYTHONPATH=src from the repo root.
    _src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    if _src not in sys.path:
        sys.path.insert(0, _src)

from repro.experiments import parallel
from repro.experiments.cache import ResultCache, code_fingerprint, unit_key
from repro.experiments.cli import ALL_ORDER
from repro.experiments.common import check_experiment, run_experiment
from repro.experiments.snapstore import execute_unit, snapshot_counters
from repro.experiments.supervisor import SupervisorStats
from repro.sim.engine import Engine, engine_backend_default, snapshot_default

#: Counter keys copied into per-scenario/per-experiment "engine" dicts
#: (fired/elided are already first-class report fields).
_COUNTER_KEYS = ("pushes", "cancels", "dead_drops", "cascades")

#: Snapshot-store keys (deltas ride the same counters channel as the
#: engine's; see repro.experiments.snapstore.snapshot_counters).
_SNAP_KEYS = ("snap_hits", "snap_misses", "snap_forks", "snap_cold_builds",
              "snap_saved_s")


def _counter_delta(before):
    after = Engine.counters()
    return {k: after[k] - before[k] for k in _COUNTER_KEYS}


def _snap_delta(before):
    after = snapshot_counters()
    return {k: round(after[k] - before[k], 3) for k in _SNAP_KEYS}


def _snap_block(source: dict) -> dict:
    """Normalize snapshot counters for a report row (strip the prefix)."""
    return {"hits": int(source.get("snap_hits", 0)),
            "misses": int(source.get("snap_misses", 0)),
            "forks": int(source.get("snap_forks", 0)),
            "cold_builds": int(source.get("snap_cold_builds", 0)),
            "prefix_saved_s": round(float(source.get("snap_saved_s", 0.0)),
                                    3)}


def bench_one(exp_id: str, fast: bool, check: bool, cache=None,
              fingerprint=None) -> dict:
    """Time one experiment unit-by-unit; returns the report row."""
    events0 = Engine.total_events_fired
    elided0 = Engine.total_events_elided
    counters0 = Engine.counters()
    snap_before = snapshot_counters()
    started = time.perf_counter()
    error = None
    scenarios = []
    hits = misses = 0
    try:
        units, assemble = parallel.decompose(exp_id, fast)
        results = []
        for unit in units:
            key = unit_key(unit, fast, fingerprint=fingerprint) \
                if cache is not None else None
            cached = False
            if key is not None:
                cached, value = cache.lookup(key)
            u_started = time.perf_counter()
            u_events0 = Engine.total_events_fired
            u_elided0 = Engine.total_events_elided
            u_counters0 = Engine.counters()
            u_snap0 = snapshot_counters()
            if cached:
                result = value
                hits += 1
            else:
                result = execute_unit(unit.func, unit.config, unit.prefix,
                                      fast)
                if key is not None:
                    cache.store(key, result)
                    misses += 1
            results.append(result)
            scenarios.append({
                "label": unit.label,
                "wall_s": round(time.perf_counter() - u_started, 3),
                "events_fired": Engine.total_events_fired - u_events0,
                "events_elided": Engine.total_events_elided - u_elided0,
                "engine": _counter_delta(u_counters0),
                "snapshot": _snap_block(_snap_delta(u_snap0)),
                "cached": cached,
            })
        table = assemble(fast, results)
        if check:
            check_experiment(exp_id, table)
    except Exception as exc:  # noqa: BLE001 - report, don't crash the sweep
        error = f"{type(exc).__name__}: {exc}"
    wall = time.perf_counter() - started
    events = Engine.total_events_fired - events0
    elided = Engine.total_events_elided - elided0
    row = {
        "exp_id": exp_id,
        "engine_backend": engine_backend_default(),
        "wall_s": round(wall, 3),
        "events_fired": events,
        "events_elided": elided,
        "events_per_sec": round(events / wall) if wall > 0 else 0,
        "engine": _counter_delta(counters0),
        "snapshot": _snap_block(_snap_delta(snap_before)),
        "scenarios": scenarios,
        "error": error,
    }
    if cache is not None:
        row["cache"] = {"hits": hits, "misses": misses}
    return row


def bench_campaign(ids, fast: bool, check: bool, jobs: int,
                   cache=None) -> list:
    """Time the ids as one supervised campaign; returns report rows.

    Wall/events per scenario are the worker-side measurements streamed
    back through the supervisor; a unit that retried reports the wall of
    its successful attempt and ``attempts > 1``.
    """
    rows = []
    for res in parallel.run_units(ids, fast=fast, check=check, jobs=jobs,
                                  cache=cache, keep_going=True):
        if res.failed_units:
            error = "; ".join(f"{fu.label}: {fu.error}"
                              for fu in res.failed_units)
        else:
            error = res.check_error
        row = {
            "exp_id": res.exp_id,
            "engine_backend": engine_backend_default(),
            "wall_s": round(res.wall_s, 3),
            "events_fired": res.events_fired,
            "events_elided": res.events_elided,
            "events_per_sec": round(res.events_fired / res.wall_s)
            if res.wall_s > 0 else 0,
            "engine": {k: res.counters.get(k, 0) for k in _COUNTER_KEYS},
            "snapshot": _snap_block(res.counters),
            "scenarios": res.unit_stats,
            "error": error,
        }
        if cache is not None:
            row["cache"] = {"hits": res.cache_hits,
                            "misses": res.n_units - res.cache_hits}
        rows.append(row)
    return rows


def profile_experiment(exp_id: str, fast: bool) -> int:
    """cProfile one experiment; print the top 20 by cumulative time and
    the engine's per-callback attribution table (fired/cancelled/elided
    per callsite — where the event budget actually goes)."""
    import cProfile
    import pstats

    Engine.profile_reset()
    Engine.profiling = True
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        run_experiment(exp_id, fast=fast)
    finally:
        profiler.disable()
        Engine.profiling = False
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.sort_stats("cumulative").print_stats(20)
    print()
    print(Engine.profile_table())
    return 0


def engine_micro(backends=("heap", "wheel"),
                 sizes=(1_000, 10_000, 100_000),
                 churn=150_000) -> list:
    """Benchmark the event-store backends at the storage protocol level.

    Measures, per backend and pending-set size, the throughput of the
    three operations the catalogue hammers: ``push`` (arm), ``push`` then
    immediate cancel (the ~50% churn case profiling shows), and
    ``pop_due`` (fire).  The churn loop calls ``pop_due`` every 64 pairs
    so each backend does its dispatch-time housekeeping (staging drain /
    heap compaction) at a realistic cadence instead of deferring it out
    of the timed region.  Timing the backend protocol directly keeps the
    shared engine-API overhead (Event bookkeeping, counters) out of the
    comparison.
    """
    import random

    from repro.sim.engine import Event, _make_backend

    def noop():
        pass

    rows = []
    for backend in backends:
        for pending in sizes:
            rnd = random.Random(12345)
            lo, hi = 1_000_000, 4_000_000_000  # 1ms..4s horizons
            seed_delays = [rnd.randint(lo, hi) for _ in range(pending)]
            churn_delays = [rnd.randint(lo, hi) for _ in range(churn)]

            def seeded():
                b = _make_backend(backend)
                seq = 0
                for d in seed_delays:
                    seq += 1
                    b.push((d, 0, seq, Event(d, 0, seq, noop, ())))
                return b, seq

            b, seq = seeded()
            push = b.push
            t0 = time.perf_counter()
            for d in churn_delays:
                seq += 1
                push((d, 0, seq, Event(d, 0, seq, noop, ())))
            push_per_s = churn / (time.perf_counter() - t0)

            b, seq = seeded()
            push, note, pop = b.push, b.note_cancelled, b.pop_due
            i = 0
            t0 = time.perf_counter()
            for d in churn_delays:
                seq += 1
                ev = Event(d, 0, seq, noop, ())
                push((d, 0, seq, ev))
                ev.cancel()
                note()
                i += 1
                if not i & 63:
                    pop(0)  # dispatch-time housekeeping, nothing due
            pc_per_s = churn / (time.perf_counter() - t0)

            b, _ = seeded()
            pop = b.pop_due
            t0 = time.perf_counter()
            fired = 0
            while pop(None) is not None:
                fired += 1
            pop_per_s = fired / (time.perf_counter() - t0)
            assert fired == pending

            rows.append({
                "backend": backend,
                "pending": pending,
                "push_per_s": round(push_per_s),
                "push_cancel_pairs_per_s": round(pc_per_s),
                "pop_per_s": round(pop_per_s),
            })
    return rows


def print_engine_micro(rows) -> None:
    print(f"{'backend':8s} {'pending':>8s} {'push/s':>12s} "
          f"{'push+cancel/s':>14s} {'pop/s':>12s}")
    for r in rows:
        print(f"{r['backend']:8s} {r['pending']:>8,d} "
              f"{r['push_per_s']:>12,d} "
              f"{r['push_cancel_pairs_per_s']:>14,d} "
              f"{r['pop_per_s']:>12,d}")
    by_key = {(r["backend"], r["pending"]): r for r in rows}
    for (backend, pending), r in sorted(by_key.items()):
        ref = by_key.get(("heap", pending))
        if backend != "heap" and ref is not None:
            ratio = (r["push_cancel_pairs_per_s"]
                     / ref["push_cancel_pairs_per_s"])
            print(f"{backend} vs heap @ {pending:,d} pending: "
                  f"x{ratio:.2f} push+cancel")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Time the experiment catalogue and emit a JSON report.")
    parser.add_argument("--fast", action="store_true",
                        help="shrunken workloads (recommended)")
    parser.add_argument("--experiments", default=None, metavar="IDS",
                        help="comma-separated experiment ids "
                             "(default: the full catalogue)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="N>1 times the ids as one supervised campaign "
                             "over N workers (adds supervisor fault "
                             "counters to the report)")
    parser.add_argument("--out", default=None,
                        help="output path (default BENCH_<YYYYMMDD>.json)")
    parser.add_argument("--check", action="store_true",
                        help="run shape checks; exit nonzero on any failure")
    parser.add_argument("--cache", action="store_true",
                        help="consult/populate the work-unit result cache")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="result cache directory")
    parser.add_argument("--profile", default=None, metavar="EXP_ID",
                        help="cProfile this experiment, print the top 20 "
                             "cumulative entries, and exit")
    parser.add_argument("--backend", default=None, metavar="NAMES",
                        help="comma-separated engine backends; more than "
                             "one runs the catalogue once per backend "
                             "(default: $VSCHED_REPRO_ENGINE or heap)")
    parser.add_argument("--snapshot-ab", action="store_true",
                        help="after the primary run, rerun the ids with "
                             "$VSCHED_REPRO_SNAPSHOT=0 and embed the "
                             "per-experiment cold-vs-forked wall-time "
                             "comparison in the report")
    parser.add_argument("--engine-micro", action="store_true",
                        help="benchmark the event-store backends (push / "
                             "push+cancel / pop at 1k/10k/100k pending); "
                             "standalone unless combined with a catalogue "
                             "run, then embedded in the report")
    args = parser.parse_args(argv)

    if args.profile:
        return profile_experiment(args.profile, fast=args.fast)

    micro_rows = None
    if args.engine_micro:
        micro_backends = ([b.strip() for b in args.backend.split(",")
                           if b.strip()] if args.backend
                          else ["heap", "wheel"])
        micro_rows = engine_micro(backends=micro_backends)
        print_engine_micro(micro_rows)
        if not args.fast and args.experiments is None:
            return 0  # micro-only invocation: no catalogue, no report

    ids = (args.experiments.split(",") if args.experiments else ALL_ORDER)
    ids = [i.strip() for i in ids if i.strip()]
    backends = ([b.strip() for b in args.backend.split(",") if b.strip()]
                if args.backend else [engine_backend_default()])
    parallel.set_default_jobs(args.jobs)
    if args.cache and len(backends) > 1:
        print("--cache with multiple backends would serve backend A's "
              "timings to backend B (unit keys don't encode the backend); "
              "refusing", file=sys.stderr)
        return 2
    cache = ResultCache(args.cache_dir) if args.cache else None
    fingerprint = code_fingerprint() if args.cache else None

    saved_backend = os.environ.get("VSCHED_REPRO_ENGINE")
    runs = {}        # backend -> list of report rows
    supervisors = {}  # backend -> supervisor stats dict
    try:
        for backend in backends:
            os.environ["VSCHED_REPRO_ENGINE"] = backend
            if args.jobs > 1:
                results = bench_campaign(ids, fast=args.fast,
                                         check=args.check,
                                         jobs=args.jobs, cache=cache)
            else:
                results = []
                for exp_id in ids:
                    results.append(bench_one(exp_id, fast=args.fast,
                                             check=args.check, cache=cache,
                                             fingerprint=fingerprint))
            for res in results:
                status = res["error"] or "ok"
                cache_note = ""
                if cache is not None:
                    cache_note = (f" {res['cache']['hits']}h/"
                                  f"{res['cache']['misses']}m")
                print(f"{res['exp_id']:8s} [{backend:5s}] "
                      f"{res['wall_s']:8.2f}s "
                      f"{res['events_fired']:>12,d} ev "
                      f"{res.get('events_elided', 0):>11,d} el "
                      f"{res['events_per_sec']:>10,d} ev/s{cache_note}  "
                      f"[{status}]", flush=True)
            runs[backend] = results
            sup_stats = parallel.last_campaign_stats()
            supervisors[backend] = sup_stats.as_dict() \
                if sup_stats is not None else SupervisorStats().as_dict()
    finally:
        if saved_backend is None:
            os.environ.pop("VSCHED_REPRO_ENGINE", None)
        else:
            os.environ["VSCHED_REPRO_ENGINE"] = saved_backend

    # Top-level totals stay the first backend's so snapshots remain
    # trajectory-comparable; additional backends go under backend_runs.
    primary = runs[backends[0]]
    report = {
        "date": datetime.date.today().isoformat(),
        "fast": args.fast,
        "jobs": args.jobs,
        "python": platform.python_version(),
        "engine_backend": backends[0],
        "total_wall_s": round(sum(r["wall_s"] for r in primary), 3),
        "total_events_fired": sum(r["events_fired"] for r in primary),
        "total_events_elided": sum(r.get("events_elided", 0)
                                   for r in primary),
        "tickless": os.environ.get("VSCHED_REPRO_TICKLESS", "1") != "0",
        "snapshot_forking": snapshot_default(),
        "snapshot": {
            "hits": sum(r["snapshot"]["hits"] for r in primary),
            "misses": sum(r["snapshot"]["misses"] for r in primary),
            "forks": sum(r["snapshot"]["forks"] for r in primary),
            "cold_builds": sum(r["snapshot"]["cold_builds"]
                               for r in primary),
            "prefix_saved_s": round(sum(r["snapshot"]["prefix_saved_s"]
                                        for r in primary), 3),
        },
        "supervisor": supervisors[backends[0]],
        "experiments": primary,
    }
    if len(backends) > 1:
        report["backend_runs"] = {
            backend: {
                "total_wall_s": round(sum(r["wall_s"]
                                          for r in runs[backend]), 3),
                "total_events_fired": sum(r["events_fired"]
                                          for r in runs[backend]),
                "total_events_elided": sum(r.get("events_elided", 0)
                                           for r in runs[backend]),
                "supervisor": supervisors[backend],
                "experiments": runs[backend],
            }
            for backend in backends[1:]
        }
    if args.snapshot_ab:
        saved_snap = os.environ.get("VSCHED_REPRO_SNAPSHOT")
        os.environ["VSCHED_REPRO_SNAPSHOT"] = "0"
        try:
            if args.jobs > 1:
                off_rows = bench_campaign(ids, fast=args.fast,
                                          check=args.check,
                                          jobs=args.jobs, cache=None)
            else:
                off_rows = [bench_one(exp_id, fast=args.fast,
                                      check=args.check)
                            for exp_id in ids]
        finally:
            if saved_snap is None:
                os.environ.pop("VSCHED_REPRO_SNAPSHOT", None)
            else:
                os.environ["VSCHED_REPRO_SNAPSHOT"] = saved_snap
        on_by_id = {r["exp_id"]: r for r in primary}
        ab = {}
        for off in off_rows:
            on = on_by_id[off["exp_id"]]
            ab[off["exp_id"]] = {
                "forked_wall_s": on["wall_s"],
                "cold_wall_s": off["wall_s"],
                "speedup": round(off["wall_s"] / on["wall_s"], 2)
                if on["wall_s"] > 0 else 0.0,
            }
        on_total = sum(r["wall_s"] for r in primary)
        off_total = sum(r["wall_s"] for r in off_rows)
        report["snapshot_ab"] = {
            "forked_total_wall_s": round(on_total, 3),
            "cold_total_wall_s": round(off_total, 3),
            "speedup": round(off_total / on_total, 2)
            if on_total > 0 else 0.0,
            "experiments": ab,
        }
        print(f"snapshot A/B: forked {on_total:.1f}s vs cold "
              f"{off_total:.1f}s -> x{report['snapshot_ab']['speedup']:.2f}",
              flush=True)
    if micro_rows is not None:
        report["engine_micro"] = micro_rows
    if cache is not None:
        report["cache"] = {
            "dir": cache.path,
            "hits": cache.hits,
            "misses": cache.misses,
        }
    out = args.out or f"BENCH_{datetime.date.today():%Y%m%d}.json"
    with open(out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    snap = report["snapshot"]
    snap_note = (f", snapshots {snap['hits']}h/{snap['misses']}m "
                 f"({snap['prefix_saved_s']:.1f}s prefix time saved)"
                 if snap["hits"] or snap["misses"] or snap["cold_builds"]
                 else "")
    print(f"wrote {out}: {report['total_wall_s']:.1f}s total, "
          f"{report['total_events_fired']:,d} events fired, "
          f"{report['total_events_elided']:,d} elided"
          + snap_note
          + (f", cache {cache.hits}h/{cache.misses}m" if cache else ""))
    for backend, block in report.get("backend_runs", {}).items():
        print(f"  backend {backend}: {block['total_wall_s']:.1f}s total, "
              f"{block['total_events_fired']:,d} events fired")

    failures = [r["exp_id"] for rows in runs.values() for r in rows
                if r["error"]]
    if failures:
        print(f"FAILURES: {failures}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
