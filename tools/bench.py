#!/usr/bin/env python3
"""Benchmark the experiment catalogue: wall-clock, events fired, events/sec.

Runs each experiment (fast mode recommended) and writes a JSON report,
``BENCH_<YYYYMMDD>.json`` by default, so engine-hot-path changes can be
compared run over run.  Experiments that expose the work-unit protocol are
timed per scenario, so the report shows where the seconds go inside the
heavy experiments; with ``--cache`` the report also counts unit cache
hits/misses (a warm rerun of an unchanged tree is all hits).

With ``--jobs N`` (N > 1) the catalogue runs as one supervised campaign
through the flat scheduler: per-scenario wall/events come from the worker
measurements, scenario rows carry their retry ``attempts``, and the
report's ``supervisor`` block records retry/requeue/timeout/kill/respawn
counts — under ``$VSCHED_REPRO_CHAOS`` that is the fault-recovery bill.

Usage::

    PYTHONPATH=src python tools/bench.py --fast
    PYTHONPATH=src python tools/bench.py --fast --experiments fig2,fig14
    PYTHONPATH=src python tools/bench.py --fast --jobs 4
    PYTHONPATH=src python tools/bench.py --fast --cache --cache-dir .c
    PYTHONPATH=src python tools/bench.py --fast --profile fig14
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import platform
import sys
import time

if __package__ is None or __package__ == "":
    # Allow running without PYTHONPATH=src from the repo root.
    _src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    if _src not in sys.path:
        sys.path.insert(0, _src)

from repro.experiments import parallel
from repro.experiments.cache import ResultCache, code_fingerprint, unit_key
from repro.experiments.cli import ALL_ORDER
from repro.experiments.common import check_experiment, run_experiment
from repro.experiments.supervisor import SupervisorStats
from repro.sim.engine import Engine


def bench_one(exp_id: str, fast: bool, check: bool, cache=None,
              fingerprint=None) -> dict:
    """Time one experiment unit-by-unit; returns the report row."""
    events0 = Engine.total_events_fired
    elided0 = Engine.total_events_elided
    started = time.perf_counter()
    error = None
    scenarios = []
    hits = misses = 0
    try:
        units, assemble = parallel.decompose(exp_id, fast)
        results = []
        for unit in units:
            key = unit_key(unit, fast, fingerprint=fingerprint) \
                if cache is not None else None
            cached = False
            if key is not None:
                cached, value = cache.lookup(key)
            u_started = time.perf_counter()
            u_events0 = Engine.total_events_fired
            u_elided0 = Engine.total_events_elided
            if cached:
                result = value
                hits += 1
            else:
                result = unit.func(*unit.config)
                if key is not None:
                    cache.store(key, result)
                    misses += 1
            results.append(result)
            scenarios.append({
                "label": unit.label,
                "wall_s": round(time.perf_counter() - u_started, 3),
                "events_fired": Engine.total_events_fired - u_events0,
                "events_elided": Engine.total_events_elided - u_elided0,
                "cached": cached,
            })
        table = assemble(fast, results)
        if check:
            check_experiment(exp_id, table)
    except Exception as exc:  # noqa: BLE001 - report, don't crash the sweep
        error = f"{type(exc).__name__}: {exc}"
    wall = time.perf_counter() - started
    events = Engine.total_events_fired - events0
    elided = Engine.total_events_elided - elided0
    row = {
        "exp_id": exp_id,
        "wall_s": round(wall, 3),
        "events_fired": events,
        "events_elided": elided,
        "events_per_sec": round(events / wall) if wall > 0 else 0,
        "scenarios": scenarios,
        "error": error,
    }
    if cache is not None:
        row["cache"] = {"hits": hits, "misses": misses}
    return row


def bench_campaign(ids, fast: bool, check: bool, jobs: int,
                   cache=None) -> list:
    """Time the ids as one supervised campaign; returns report rows.

    Wall/events per scenario are the worker-side measurements streamed
    back through the supervisor; a unit that retried reports the wall of
    its successful attempt and ``attempts > 1``.
    """
    rows = []
    for res in parallel.run_units(ids, fast=fast, check=check, jobs=jobs,
                                  cache=cache, keep_going=True):
        if res.failed_units:
            error = "; ".join(f"{fu.label}: {fu.error}"
                              for fu in res.failed_units)
        else:
            error = res.check_error
        row = {
            "exp_id": res.exp_id,
            "wall_s": round(res.wall_s, 3),
            "events_fired": res.events_fired,
            "events_elided": res.events_elided,
            "events_per_sec": round(res.events_fired / res.wall_s)
            if res.wall_s > 0 else 0,
            "scenarios": res.unit_stats,
            "error": error,
        }
        if cache is not None:
            row["cache"] = {"hits": res.cache_hits,
                            "misses": res.n_units - res.cache_hits}
        rows.append(row)
    return rows


def profile_experiment(exp_id: str, fast: bool) -> int:
    """cProfile one experiment; print the top 20 by cumulative time and
    the engine's per-callback attribution table (fired/cancelled/elided
    per callsite — where the event budget actually goes)."""
    import cProfile
    import pstats

    Engine.profile_reset()
    Engine.profiling = True
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        run_experiment(exp_id, fast=fast)
    finally:
        profiler.disable()
        Engine.profiling = False
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.sort_stats("cumulative").print_stats(20)
    print()
    print(Engine.profile_table())
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Time the experiment catalogue and emit a JSON report.")
    parser.add_argument("--fast", action="store_true",
                        help="shrunken workloads (recommended)")
    parser.add_argument("--experiments", default=None, metavar="IDS",
                        help="comma-separated experiment ids "
                             "(default: the full catalogue)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="N>1 times the ids as one supervised campaign "
                             "over N workers (adds supervisor fault "
                             "counters to the report)")
    parser.add_argument("--out", default=None,
                        help="output path (default BENCH_<YYYYMMDD>.json)")
    parser.add_argument("--check", action="store_true",
                        help="run shape checks; exit nonzero on any failure")
    parser.add_argument("--cache", action="store_true",
                        help="consult/populate the work-unit result cache")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="result cache directory")
    parser.add_argument("--profile", default=None, metavar="EXP_ID",
                        help="cProfile this experiment, print the top 20 "
                             "cumulative entries, and exit")
    args = parser.parse_args(argv)

    if args.profile:
        return profile_experiment(args.profile, fast=args.fast)

    ids = (args.experiments.split(",") if args.experiments else ALL_ORDER)
    ids = [i.strip() for i in ids if i.strip()]
    parallel.set_default_jobs(args.jobs)
    cache = ResultCache(args.cache_dir) if args.cache else None
    fingerprint = code_fingerprint() if args.cache else None

    if args.jobs > 1:
        results = bench_campaign(ids, fast=args.fast, check=args.check,
                                 jobs=args.jobs, cache=cache)
    else:
        results = []
        for exp_id in ids:
            results.append(bench_one(exp_id, fast=args.fast,
                                     check=args.check, cache=cache,
                                     fingerprint=fingerprint))
    for res in results:
        status = res["error"] or "ok"
        cache_note = ""
        if cache is not None:
            cache_note = (f" {res['cache']['hits']}h/"
                          f"{res['cache']['misses']}m")
        print(f"{res['exp_id']:8s} {res['wall_s']:8.2f}s "
              f"{res['events_fired']:>12,d} ev "
              f"{res.get('events_elided', 0):>11,d} el "
              f"{res['events_per_sec']:>10,d} ev/s{cache_note}  [{status}]",
              flush=True)

    sup_stats = parallel.last_campaign_stats()
    supervisor = sup_stats.as_dict() if sup_stats is not None else \
        SupervisorStats().as_dict()
    report = {
        "date": datetime.date.today().isoformat(),
        "fast": args.fast,
        "jobs": args.jobs,
        "python": platform.python_version(),
        "total_wall_s": round(sum(r["wall_s"] for r in results), 3),
        "total_events_fired": sum(r["events_fired"] for r in results),
        "total_events_elided": sum(r.get("events_elided", 0)
                                   for r in results),
        "tickless": os.environ.get("VSCHED_REPRO_TICKLESS", "1") != "0",
        "supervisor": supervisor,
        "experiments": results,
    }
    if cache is not None:
        report["cache"] = {
            "dir": cache.path,
            "hits": cache.hits,
            "misses": cache.misses,
        }
    out = args.out or f"BENCH_{datetime.date.today():%Y%m%d}.json"
    with open(out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {out}: {report['total_wall_s']:.1f}s total, "
          f"{report['total_events_fired']:,d} events fired, "
          f"{report['total_events_elided']:,d} elided"
          + (f", cache {cache.hits}h/{cache.misses}m" if cache else ""))

    failures = [r["exp_id"] for r in results if r["error"]]
    if failures:
        print(f"FAILURES: {failures}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
