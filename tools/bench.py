#!/usr/bin/env python3
"""Benchmark the experiment catalogue: wall-clock, events fired, events/sec.

Runs each experiment (fast mode recommended) and writes a JSON report,
``BENCH_<YYYYMMDD>.json`` by default, so engine-hot-path changes can be
compared run over run.

Usage::

    PYTHONPATH=src python tools/bench.py --fast
    PYTHONPATH=src python tools/bench.py --fast --experiments fig2,fig14
    PYTHONPATH=src python tools/bench.py --fast --jobs 4 --check
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import platform
import sys
import time

if __package__ is None or __package__ == "":
    # Allow running without PYTHONPATH=src from the repo root.
    _src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    if _src not in sys.path:
        sys.path.insert(0, _src)

from repro.experiments import parallel
from repro.experiments.cli import ALL_ORDER
from repro.experiments.common import check_experiment, run_experiment
from repro.sim.engine import Engine


def bench_one(exp_id: str, fast: bool, check: bool) -> dict:
    events0 = Engine.total_events_fired
    started = time.perf_counter()
    error = None
    try:
        table = run_experiment(exp_id, fast=fast)
        if check:
            check_experiment(exp_id, table)
    except Exception as exc:  # noqa: BLE001 - report, don't crash the sweep
        error = f"{type(exc).__name__}: {exc}"
    wall = time.perf_counter() - started
    events = Engine.total_events_fired - events0
    return {
        "exp_id": exp_id,
        "wall_s": round(wall, 3),
        "events_fired": events,
        "events_per_sec": round(events / wall) if wall > 0 else 0,
        "error": error,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Time the experiment catalogue and emit a JSON report.")
    parser.add_argument("--fast", action="store_true",
                        help="shrunken workloads (recommended)")
    parser.add_argument("--experiments", default=None, metavar="IDS",
                        help="comma-separated experiment ids "
                             "(default: the full catalogue)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="scenario-sweep worker processes per experiment")
    parser.add_argument("--out", default=None,
                        help="output path (default BENCH_<YYYYMMDD>.json)")
    parser.add_argument("--check", action="store_true",
                        help="run shape checks; exit nonzero on any failure")
    args = parser.parse_args(argv)

    ids = (args.experiments.split(",") if args.experiments else ALL_ORDER)
    ids = [i.strip() for i in ids if i.strip()]
    parallel.set_default_jobs(args.jobs)

    results = []
    for exp_id in ids:
        res = bench_one(exp_id, fast=args.fast, check=args.check)
        status = res["error"] or "ok"
        print(f"{exp_id:8s} {res['wall_s']:8.2f}s "
              f"{res['events_fired']:>12,d} ev "
              f"{res['events_per_sec']:>10,d} ev/s  [{status}]", flush=True)
        results.append(res)

    report = {
        "date": datetime.date.today().isoformat(),
        "fast": args.fast,
        "jobs": args.jobs,
        "python": platform.python_version(),
        "total_wall_s": round(sum(r["wall_s"] for r in results), 3),
        "total_events_fired": sum(r["events_fired"] for r in results),
        "experiments": results,
    }
    out = args.out or f"BENCH_{datetime.date.today():%Y%m%d}.json"
    with open(out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {out}: {report['total_wall_s']:.1f}s total, "
          f"{report['total_events_fired']:,d} events")

    failures = [r["exp_id"] for r in results if r["error"]]
    if failures:
        print(f"FAILURES: {failures}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
